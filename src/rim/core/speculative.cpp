#include "rim/core/speculative.hpp"

#include <cassert>
#include <cstring>

#include "rim/common/undo_log.hpp"
#include "rim/core/scenario.hpp"
#include "rim/parallel/thread_pool.hpp"

/// \file speculative.cpp
/// The optimistic batch executor (header rationale in speculative.hpp).
///
/// Execution protocol per task:
///  1. claim every footprint cell in ascending slot order (CAS on the
///     epoch-stamped index). Meeting a live owner aborts the attempt before
///     any write — the claimed prefix is released and the task requeues.
///     The ascending order makes progress unconditional: among any set of
///     contenders, the one holding the highest claimed slot never finds a
///     live owner ahead of it.
///  2. consult BatchHooks::before_speculative_task (a veto skips the task —
///     the poisoned-task fault model of the wave path).
///  3. push the delta on the worker's UndoLog, execute it.
///  4. consult BatchHooks::after_speculative_task; a failed validation
///     unwinds the log (inverse deltas) while the cells are still owned,
///     then requeues the task.
///  5. release the cells (release-store; the next owner's CAS acquires).
///
/// Claims use cell column addresses as identity: stable while the grid is
/// frozen (the batch pipeline's structural pass is over) and in exact
/// correspondence with the cells the delta kernel walks — including the
/// huge-rectangle fallback, where the walk degenerates to every occupied
/// cell and the footprint correctly becomes "conflicts with everything".

namespace rim::core {

namespace {

/// SplitMix64 finalizer — enough mixing for pointer keys.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Open-addressed cell→slot interning table (arena-resident, linear
/// probing). Keys are cell column addresses; slot numbers are assigned in
/// first-touch order during the serial prep pass, so the numbering is a
/// deterministic function of the batch even though the key values are not.
struct CellTable {
  std::uintptr_t* keys = nullptr;
  std::uint32_t* slots = nullptr;
  std::size_t mask = 0;
  std::uint32_t next_slot = 0;

  [[nodiscard]] std::uint32_t intern(std::uintptr_t key) {
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    for (;;) {
      if (keys[i] == key) return slots[i];
      if (keys[i] == 0) {
        keys[i] = key;
        slots[i] = next_slot;
        return next_slot++;
      }
      i = (i + 1) & mask;
    }
  }
};

}  // namespace

SpeculativeExecutor::Footprint* SpeculativeExecutor::collect_footprints(
    Scenario& scenario, const DiskTask* tasks, std::size_t count) {
  const geom::DynamicGrid& grid = scenario.grid_;
  // Pass 1: size every task's walk. Empty cells never hold a writable slot,
  // so they are not part of the footprint (the kernel's visit is a no-op).
  auto* cell_counts = prep_arena_.alloc_array<std::uint32_t>(count);
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t cells = 0;
    grid.for_each_cell_in_disk(tasks[i].center, tasks[i].query_radius2(),
                               [&](const geom::DynamicGrid::CellView& cell) {
                                 if (cell.count > 0) ++cells;
                               });
    cell_counts[i] = cells;
    total += cells;
  }
  // Pass 2: record the visited cells' identities, task by task.
  auto* keys = prep_arena_.alloc_array<std::uintptr_t>(total);
  {
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
      grid.for_each_cell_in_disk(
          tasks[i].center, tasks[i].query_radius2(),
          [&](const geom::DynamicGrid::CellView& cell) {
            if (cell.count > 0) {
              keys[cursor++] = reinterpret_cast<std::uintptr_t>(cell.ids);
            }
          });
    }
    assert(cursor == total);
  }
  // Intern keys into dense slots; per-task slot lists are sorted ascending
  // (the claim order that guarantees progress). A walk visits each cell at
  // most once, so the per-task lists are duplicate-free by construction.
  CellTable table;
  const std::size_t cap = next_pow2(std::max<std::size_t>(16, total * 2));
  table.keys = prep_arena_.alloc_array<std::uintptr_t>(cap);
  table.slots = prep_arena_.alloc_array<std::uint32_t>(cap);
  table.mask = cap - 1;
  std::memset(table.keys, 0, cap * sizeof(std::uintptr_t));

  auto* slot_storage = prep_arena_.alloc_array<std::uint32_t>(total);
  Footprint* feet = prep_arena_.alloc_array<Footprint>(count);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Footprint& foot = feet[i];
    foot.slots = slot_storage + cursor;
    foot.count = cell_counts[i];
    foot.attempts = 0;
    for (std::uint32_t k = 0; k < foot.count; ++k) {
      foot.slots[k] = table.intern(keys[cursor + k]);
    }
    std::sort(foot.slots, foot.slots + foot.count);
    cursor += foot.count;
  }
  ensure_stamps(table.next_slot);
  return feet;
}

void SpeculativeExecutor::ensure_stamps(std::size_t slot_count) {
  if (slot_count > stamp_capacity_) {
    const std::size_t cap = next_pow2(std::max<std::size_t>(64, slot_count));
    // Value-initialized: every stamp starts at epoch 0, which never matches
    // a live epoch (epochs start at 1).
    stamps_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    stamp_capacity_ = cap;
  }
  ++epoch_;
  if (epoch_ == 0) {
    // Epoch wrap (once per 2^32 batches): stale stamps could alias the new
    // epoch, so clear them and restart at 1.
    for (std::size_t i = 0; i < stamp_capacity_; ++i) {
      stamps_[i].store(0, std::memory_order_relaxed);
    }
    epoch_ = 1;
  }
}

void SpeculativeExecutor::release(const Footprint& foot, std::size_t claimed) {
  for (std::size_t k = 0; k < claimed; ++k) {
    stamps_[foot.slots[k]].store(0, std::memory_order_release);
  }
}

SpeculativeExecutor::Attempt SpeculativeExecutor::attempt(
    Scenario& scenario, const DiskTask* tasks, Footprint* feet,
    std::uint32_t task, BatchHooks* hooks, common::Arena& worker_arena) {
  Footprint& foot = feet[task];
  ++foot.attempts;
  const std::uint64_t claim = (static_cast<std::uint64_t>(epoch_) << 32) |
                              (static_cast<std::uint64_t>(task) + 1);
  std::size_t claimed = 0;
  for (; claimed < foot.count; ++claimed) {
    std::atomic<std::uint64_t>& stamp = stamps_[foot.slots[claimed]];
    std::uint64_t cur = stamp.load(std::memory_order_relaxed);
    bool won = false;
    for (;;) {
      if ((cur >> 32) == epoch_) break;  // live owner — abort, don't wait
      // Success acquires the previous owner's release of this cell, so its
      // interference writes are visible before ours begin.
      if (stamp.compare_exchange_weak(cur, claim, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        won = true;
        break;
      }
    }
    if (!won) break;
  }
  if (claimed < foot.count) {
    release(foot, claimed);
    return Attempt::kConflict;
  }
  if (hooks != nullptr && !hooks->before_speculative_task(task)) {
    release(foot, foot.count);
    ++scenario.stats_.hook_skipped_tasks;
    return Attempt::kSkipped;
  }
  common::UndoLog<DiskTask> log(worker_arena);
  const std::size_t mark = log.mark();
  const DiskTask& t = tasks[task];
  log.push(t);
  scenario.run_disk_delta(t.exclude, t.center, t.old_r2, t.new_r2);
  if (hooks != nullptr && !hooks->after_speculative_task(task)) {
    // Roll back under ownership: replay the log newest-first with old/new
    // swapped (the exact inverse of a commuting ±1 region delta).
    log.unwind(mark, [&scenario](const DiskTask& rec) {
      scenario.run_disk_delta(rec.exclude, rec.center, rec.new_r2, rec.old_r2);
    });
    release(foot, foot.count);
    return Attempt::kConflict;
  }
  release(foot, foot.count);
  scenario.stats_.spec_chain_length.record(foot.attempts);
  return Attempt::kCommitted;
}

SpecOutcome SpeculativeExecutor::run(Scenario& scenario, const DiskTask* tasks,
                                     std::size_t count,
                                     parallel::ThreadPool* pool,
                                     BatchHooks* hooks) {
  SpecOutcome out;
  if (count == 0) return out;
  prep_arena_.reset();
  Footprint* feet = collect_footprints(scenario, tasks, count);

  const std::size_t workers = pool != nullptr ? pool->thread_count() : 0;
  if (worker_arenas_.size() < std::max<std::size_t>(workers, 1)) {
    worker_arenas_.resize(std::max<std::size_t>(workers, 1));
  }
  for (common::Arena& arena : worker_arenas_) arena.reset();

  auto* ready = prep_arena_.alloc_array<std::uint32_t>(count);
  for (std::size_t i = 0; i < count; ++i) {
    ready[i] = static_cast<std::uint32_t>(i);
  }
  std::size_t ready_count = count;

  const bool go_parallel =
      workers > 1 && count >= scenario.options_.batch_min_parallel_tasks;
  if (go_parallel) {
    for (std::size_t round = 0; round < kMaxRounds && ready_count > 0;
         ++round) {
      if (round > 0) ++out.replay_rounds;
      std::atomic<std::size_t> cursor{0};
      std::atomic<std::size_t> loser_count{0};
      std::atomic<std::size_t> committed{0};
      auto* losers = prep_arena_.alloc_array<std::uint32_t>(ready_count);
      const std::size_t n_ready = ready_count;
      for (std::size_t w = 0; w < workers; ++w) {
        common::Arena* arena = &worker_arenas_[w];
        pool->submit([this, &scenario, tasks, feet, hooks, ready, n_ready,
                      &cursor, &loser_count, &committed, losers, arena] {
          for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_ready) return;
            switch (attempt(scenario, tasks, feet, ready[i], hooks, *arena)) {
              case Attempt::kCommitted:
                committed.fetch_add(1, std::memory_order_relaxed);
                break;
              case Attempt::kConflict:
                losers[loser_count.fetch_add(1, std::memory_order_relaxed)] =
                    ready[i];
                break;
              case Attempt::kSkipped:
                break;
            }
          }
        });
      }
      pool->wait_idle();
      const std::size_t lost = loser_count.load(std::memory_order_relaxed);
      out.committed += committed.load(std::memory_order_relaxed);
      out.rolled_back += lost;
      // Replays run in ascending task order: the deterministic priority
      // that mirrors the serial baseline.
      std::sort(losers, losers + lost);
      const bool progressed = lost < ready_count;
      ready = losers;
      ready_count = lost;
      if (!progressed) break;  // contention livelock guard: finish serially
    }
  }

  // Serial tail: whatever is still pending (no pool, exhausted rounds, or a
  // zero-progress round) commits one task at a time in ascending task
  // order. Claims still run — uncontended now — so hooks observe the same
  // protocol, and a validation veto retries in place a bounded number of
  // times before the task counts as vetoed (the corruption model of a
  // poisoned wave task, left for the InvariantAuditor to find).
  for (std::size_t i = 0; i < ready_count; ++i) {
    ++out.serial_tasks;
    Attempt result = Attempt::kConflict;
    for (std::size_t tries = 0;
         result == Attempt::kConflict && tries <= kMaxValidationRetries;
         ++tries) {
      result = attempt(scenario, tasks, feet, ready[i], hooks,
                       worker_arenas_[0]);
      if (result == Attempt::kConflict) ++out.rolled_back;
    }
    if (result == Attempt::kCommitted) {
      ++out.committed;
    } else if (result == Attempt::kConflict) {
      ++scenario.stats_.hook_skipped_tasks;
    }
  }
  return out;
}

}  // namespace rim::core
