#include "rim/mac/medium.hpp"

#include <algorithm>
#include <cassert>

#include "rim/core/radii.hpp"
#include "rim/geom/grid_index.hpp"

namespace rim::mac {

Medium::Medium(const graph::Graph& topology, std::span<const geom::Vec2> points)
    : covered_by_(points.size()) {
  radii_ = core::transmission_radii(topology, points);
  if (points.empty()) return;
  // Coverage uses the exact squared radii so a node's farthest neighbor —
  // the very partner it talks to — is always inside its disk.
  const std::vector<double> radii2 = core::transmission_radii_squared(topology, points);
  double max_r = 0.0;
  for (double r : radii_) max_r = std::max(max_r, r);
  const geom::GridIndex index(points, std::max(max_r * 0.5, 1e-9));
  for (NodeId u = 0; u < points.size(); ++u) {
    if (radii2[u] <= 0.0) continue;
    index.for_each_in_disk_squared(points[u], radii2[u], [&](NodeId v) {
      if (v != u) covered_by_[v].push_back(u);
    });
  }
  for (auto& list : covered_by_) std::sort(list.begin(), list.end());
}

bool Medium::covers(NodeId u, NodeId v) const {
  const auto& list = covered_by_[v];
  return std::binary_search(list.begin(), list.end(), u);
}

bool Medium::frame_received(NodeId u, NodeId v,
                            std::span<const std::uint8_t> transmitting) const {
  assert(transmitting.size() == node_count());
  if (!transmitting[u]) return false;
  if (transmitting[v]) return false;  // half duplex
  if (!covers(u, v)) return false;    // out of range
  for (NodeId w : covered_by_[v]) {
    if (w != u && transmitting[w]) return false;  // collision at the receiver
  }
  return true;
}

}  // namespace rim::mac
