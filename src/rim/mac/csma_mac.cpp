#include "rim/mac/csma_mac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace rim::mac {

CsmaMac::CsmaMac(const Medium& medium, Params params, std::uint64_t seed)
    : medium_(medium),
      params_(params),
      rng_(seed),
      queues_(medium.node_count()),
      transmitting_(medium.node_count(), 0),
      order_(medium.node_count()) {
  std::iota(order_.begin(), order_.end(), NodeId{0});
}

void CsmaMac::offer(Frame frame) {
  assert(frame.src < queues_.size() && frame.dst < queues_.size());
  ++stats_.offered;
  queues_[frame.src].push_back(Queued{frame, 0});
}

bool CsmaMac::medium_busy_at(NodeId u) const {
  for (NodeId w : medium_.coverers_of(u)) {
    if (transmitting_[w]) return true;
  }
  return false;
}

void CsmaMac::step(double slot_index) {
  // Phase 1: contention in random order (Fisher–Yates over order_).
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng_.next_below(i)]);
  }
  std::fill(transmitting_.begin(), transmitting_.end(), 0);
  for (NodeId u : order_) {
    if (queues_[u].empty()) continue;
    if (rng_.next_double() >= params_.persistence) continue;
    if (medium_busy_at(u)) continue;  // carrier sense: defer
    transmitting_[u] = 1;
  }
  // Phase 2: resolve receptions (hidden terminals can still collide).
  for (NodeId u = 0; u < queues_.size(); ++u) {
    if (!transmitting_[u]) continue;
    Queued& head = queues_[u].front();
    ++stats_.transmissions;
    stats_.energy += std::pow(medium_.range(u), params_.path_loss_alpha);
    if (medium_.frame_received(u, head.frame.dst, transmitting_)) {
      ++stats_.delivered;
      stats_.total_delay_slots += slot_index - head.frame.enqueued_at;
      queues_[u].pop_front();
    } else {
      ++stats_.collisions;
      if (++head.attempts > params_.max_retries) {
        ++stats_.dropped;
        queues_[u].pop_front();
      }
    }
  }
}

void CsmaMac::finalize() {
  stats_.backlog = 0;
  for (const auto& q : queues_) stats_.backlog += q.size();
}

}  // namespace rim::mac
