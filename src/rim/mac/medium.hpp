#pragma once

#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file medium.hpp
/// The shared radio medium induced by a topology.
///
/// Reception follows the paper's disk model: node u transmitting with its
/// topology-induced range r_u is heard by exactly the nodes in D(u, r_u).
/// A frame from u to v is received iff v lies in u's disk and *no other*
/// node whose disk covers v transmits in the same slot (and v itself is not
/// transmitting — half duplex). The set of nodes able to disturb v is thus
/// precisely the receiver-centric interference set of Definition 3.1, which
/// is what ties the MAC simulation to the paper's measure.

namespace rim::mac {

class Medium {
 public:
  /// Precompute coverage from \p topology over \p points.
  Medium(const graph::Graph& topology, std::span<const geom::Vec2> points);

  [[nodiscard]] std::size_t node_count() const { return covered_by_.size(); }

  /// Nodes whose disks cover v — the potential disturbers of Definition 3.1
  /// (excluding v itself), ascending.
  [[nodiscard]] std::span<const NodeId> coverers_of(NodeId v) const {
    return covered_by_[v];
  }

  /// Transmission range of u (distance to its farthest topology neighbor).
  [[nodiscard]] double range(NodeId u) const { return radii_[u]; }

  /// True iff v is inside D(u, r_u).
  [[nodiscard]] bool covers(NodeId u, NodeId v) const;

  /// Given the set of transmitters of one slot (by flag vector), decide
  /// whether the frame u -> v is received.
  [[nodiscard]] bool frame_received(NodeId u, NodeId v,
                                    std::span<const std::uint8_t> transmitting) const;

 private:
  std::vector<std::vector<NodeId>> covered_by_;
  std::vector<double> radii_;
};

}  // namespace rim::mac
