#include "rim/mac/event_queue.hpp"

#include <cassert>

namespace rim::mac {

void EventQueue::schedule(double time, Callback fn) {
  assert(time >= now_ && "cannot schedule into the past");
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run_until(double horizon) {
  std::size_t dispatched = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    // Move the callback out before popping: the callback may schedule new
    // events, which mutates the heap.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    event.fn();
    ++dispatched;
  }
  return dispatched;
}

}  // namespace rim::mac
