#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

/// \file event_queue.hpp
/// Minimal discrete-event engine: a time-ordered queue of callbacks.
/// Events at equal times fire in scheduling order (a monotone sequence
/// number breaks ties), which keeps simulations deterministic.

namespace rim::mac {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time (last dispatched event's time).
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Schedule \p fn at absolute time \p time (>= now, asserted in debug).
  void schedule(double time, Callback fn);

  /// Schedule \p fn at now() + delay.
  void schedule_in(double delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

  /// Dispatch events in time order until the queue is empty or the next
  /// event is later than \p horizon. Returns the number dispatched.
  std::size_t run_until(double horizon);

  /// Dispatch everything.
  std::size_t run() { return run_until(std::numeric_limits<double>::infinity()); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace rim::mac
