#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rim/io/json.hpp"
#include "rim/mac/medium.hpp"
#include "rim/sim/rng.hpp"

/// \file slotted_mac.hpp
/// A slotted-ALOHA-style MAC running over a Medium.
///
/// Every node keeps a FIFO of pending frames (each addressed to a topology
/// neighbor). In each slot a backlogged node transmits the head frame with
/// probability p; undelivered frames stay queued and are retried. This is
/// deliberately the simplest contention MAC — enough to expose the causal
/// chain the paper's introduction argues: higher receiver-side interference
/// => more collisions => more retransmissions => more energy.

namespace rim::mac {

struct Frame {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double enqueued_at = 0.0;  ///< slot index at generation time
};

struct MacStats {
  std::uint64_t offered = 0;          ///< frames generated
  std::uint64_t delivered = 0;        ///< frames received at destination
  std::uint64_t transmissions = 0;    ///< slots x transmitting nodes
  std::uint64_t collisions = 0;       ///< transmissions not received
  std::uint64_t dropped = 0;          ///< frames discarded (retry cap)
  double energy = 0.0;                ///< sum of r_u^alpha per transmission
  double total_delay_slots = 0.0;     ///< summed delivery delay
  std::uint64_t backlog = 0;          ///< frames still queued at the end

  [[nodiscard]] double delivery_ratio() const {
    return offered == 0 ? 1.0 : static_cast<double>(delivered) /
                                    static_cast<double>(offered);
  }
  [[nodiscard]] double mean_delay() const {
    return delivered == 0 ? 0.0 : total_delay_slots /
                                      static_cast<double>(delivered);
  }
  [[nodiscard]] double transmissions_per_delivery() const {
    return delivered == 0 ? 0.0 : static_cast<double>(transmissions) /
                                      static_cast<double>(delivered);
  }
  [[nodiscard]] double energy_per_delivery() const {
    return delivered == 0 ? 0.0 : energy / static_cast<double>(delivered);
  }

  /// Counters plus the derived ratios, as one io::Json object (the obs
  /// surface simulation reports and bench artifacts embed).
  [[nodiscard]] io::Json to_json() const;
};

class SlottedMac {
 public:
  struct Params {
    double transmit_probability = 0.25;  ///< p of slotted ALOHA
    double path_loss_alpha = 2.0;        ///< energy exponent
    std::uint32_t max_retries = 64;      ///< per-frame retry cap before drop
  };

  SlottedMac(const Medium& medium, Params params, std::uint64_t seed);

  /// Enqueue a frame at src destined for dst (a topology neighbor).
  void offer(Frame frame);

  /// Simulate one slot at time \p slot_index.
  void step(double slot_index);

  [[nodiscard]] const MacStats& stats() const { return stats_; }

  /// Number of nodes with at least one queued frame.
  [[nodiscard]] std::size_t backlogged_nodes() const;

  /// Fold remaining queue lengths into stats().backlog (call once, at end).
  void finalize();

 private:
  struct Queued {
    Frame frame;
    std::uint32_t attempts = 0;
  };

  const Medium& medium_;
  Params params_;
  sim::Rng rng_;
  std::vector<std::deque<Queued>> queues_;
  std::vector<std::uint8_t> transmitting_;  // scratch per slot
  MacStats stats_;
};

}  // namespace rim::mac
