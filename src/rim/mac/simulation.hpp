#pragma once

#include <cstdint>
#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"
#include "rim/mac/slotted_mac.hpp"

/// \file simulation.hpp
/// End-to-end traffic simulation over a topology: Bernoulli single-hop
/// traffic to random topology neighbors, driven by the discrete-event
/// engine. Experiment E10 runs the same instance under different topologies
/// and correlates the paper's interference measure with the observed
/// collision rate, delay, and energy.

namespace rim::mac {

enum class MacKind : std::uint8_t {
  kAloha,  ///< slotted ALOHA (SlottedMac)
  kCsma,   ///< carrier-sense MAC (CsmaMac); persistence taken from
           ///< mac.transmit_probability
};

struct SimulationConfig {
  std::uint64_t slots = 2000;          ///< simulated slot count
  double arrival_rate = 0.02;          ///< P(new frame per node per slot)
  SlottedMac::Params mac{};            ///< MAC parameters
  MacKind kind = MacKind::kAloha;      ///< which MAC runs the slots
  std::uint64_t seed = 1;              ///< traffic + MAC randomness
};

struct SimulationReport {
  MacStats mac;
  std::uint32_t interference = 0;  ///< I(G') of the simulated topology
  double mean_range = 0.0;         ///< average transmission radius
  std::uint64_t elapsed_ns = 0;    ///< wall time of the slot loop

  /// Full report (MAC counters + topology figures) as io::Json, for the
  /// obs registry and bench artifacts.
  [[nodiscard]] io::Json to_json() const;
};

/// Run the simulation of \p topology over \p points. Nodes without
/// neighbors generate no traffic.
[[nodiscard]] SimulationReport simulate_traffic(const graph::Graph& topology,
                                                std::span<const geom::Vec2> points,
                                                const SimulationConfig& config);

}  // namespace rim::mac
