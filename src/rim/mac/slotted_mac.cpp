#include "rim/mac/slotted_mac.hpp"

#include <cassert>
#include <cmath>

namespace rim::mac {

io::Json MacStats::to_json() const {
  io::JsonObject o;
  o["offered"] = io::Json(offered);
  o["delivered"] = io::Json(delivered);
  o["transmissions"] = io::Json(transmissions);
  o["collisions"] = io::Json(collisions);
  o["dropped"] = io::Json(dropped);
  o["energy"] = io::Json(energy);
  o["backlog"] = io::Json(backlog);
  o["delivery_ratio"] = io::Json(delivery_ratio());
  o["mean_delay"] = io::Json(mean_delay());
  o["transmissions_per_delivery"] = io::Json(transmissions_per_delivery());
  o["energy_per_delivery"] = io::Json(energy_per_delivery());
  return io::Json(std::move(o));
}

SlottedMac::SlottedMac(const Medium& medium, Params params, std::uint64_t seed)
    : medium_(medium),
      params_(params),
      rng_(seed),
      queues_(medium.node_count()),
      transmitting_(medium.node_count(), 0) {}

void SlottedMac::offer(Frame frame) {
  assert(frame.src < queues_.size() && frame.dst < queues_.size());
  ++stats_.offered;
  queues_[frame.src].push_back(Queued{frame, 0});
}

void SlottedMac::step(double slot_index) {
  // Phase 1: every backlogged node decides independently whether to send.
  std::fill(transmitting_.begin(), transmitting_.end(), 0);
  for (NodeId u = 0; u < queues_.size(); ++u) {
    if (!queues_[u].empty() &&
        rng_.next_double() < params_.transmit_probability) {
      transmitting_[u] = 1;
    }
  }
  // Phase 2: resolve receptions against the full transmitter set.
  for (NodeId u = 0; u < queues_.size(); ++u) {
    if (!transmitting_[u]) continue;
    Queued& head = queues_[u].front();
    ++stats_.transmissions;
    stats_.energy += std::pow(medium_.range(u), params_.path_loss_alpha);
    if (medium_.frame_received(u, head.frame.dst, transmitting_)) {
      ++stats_.delivered;
      stats_.total_delay_slots += slot_index - head.frame.enqueued_at;
      queues_[u].pop_front();
    } else {
      ++stats_.collisions;
      if (++head.attempts > params_.max_retries) {
        ++stats_.dropped;
        queues_[u].pop_front();
      }
    }
  }
}

std::size_t SlottedMac::backlogged_nodes() const {
  std::size_t count = 0;
  for (const auto& q : queues_) count += q.empty() ? 0u : 1u;
  return count;
}

void SlottedMac::finalize() {
  stats_.backlog = 0;
  for (const auto& q : queues_) stats_.backlog += q.size();
}

}  // namespace rim::mac
