#include "rim/mac/simulation.hpp"

#include "rim/core/interference.hpp"
#include "rim/mac/csma_mac.hpp"
#include "rim/mac/event_queue.hpp"
#include "rim/mac/medium.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/sim/rng.hpp"

namespace rim::mac {

namespace {

/// Runs the slot loop against either MAC through a uniform surface.
template <typename Mac>
MacStats drive(Mac& mac, const graph::Graph& topology,
               const SimulationConfig& config) {
  sim::Rng traffic_rng(config.seed);
  EventQueue queue;
  // One event per slot: generate arrivals, then run the MAC step. The
  // lambda reschedules itself until the horizon.
  std::uint64_t slot = 0;
  const std::function<void()> slot_event = [&] {
    for (NodeId u = 0; u < topology.node_count(); ++u) {
      const auto neighbors = topology.neighbors(u);
      if (neighbors.empty()) continue;
      if (traffic_rng.next_double() < config.arrival_rate) {
        const NodeId dst = neighbors[traffic_rng.next_below(neighbors.size())];
        mac.offer(Frame{u, dst, static_cast<double>(slot)});
      }
    }
    mac.step(static_cast<double>(slot));
    if (++slot < config.slots) queue.schedule_in(1.0, slot_event);
  };
  queue.schedule(0.0, slot_event);
  queue.run();
  mac.finalize();
  return mac.stats();
}

}  // namespace

SimulationReport simulate_traffic(const graph::Graph& topology,
                                  std::span<const geom::Vec2> points,
                                  const SimulationConfig& config) {
  const Medium medium(topology, points);
  SimulationReport report;
  const std::uint64_t started = obs::now_ns();
  if (config.kind == MacKind::kCsma) {
    CsmaMac::Params params;
    params.persistence = config.mac.transmit_probability;
    params.path_loss_alpha = config.mac.path_loss_alpha;
    params.max_retries = config.mac.max_retries;
    CsmaMac mac(medium, params, config.seed ^ 0x5b4d5cull);
    report.mac = drive(mac, topology, config);
  } else {
    SlottedMac mac(medium, config.mac, config.seed ^ 0x5b4d5cull);
    report.mac = drive(mac, topology, config);
  }
  report.elapsed_ns = obs::now_ns() - started;
  report.interference = core::graph_interference(topology, points);
  double sum_range = 0.0;
  for (NodeId u = 0; u < topology.node_count(); ++u) sum_range += medium.range(u);
  report.mean_range = points.empty() ? 0.0
                                     : sum_range / static_cast<double>(points.size());
  return report;
}

io::Json SimulationReport::to_json() const {
  io::JsonObject o;
  o["mac"] = mac.to_json();
  o["interference"] = io::Json(interference);
  o["mean_range"] = io::Json(mean_range);
  o["elapsed_ns"] = io::Json(elapsed_ns);
  return io::Json(std::move(o));
}

}  // namespace rim::mac
