#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rim/mac/medium.hpp"
#include "rim/mac/slotted_mac.hpp"
#include "rim/sim/rng.hpp"

/// \file csma_mac.hpp
/// A CSMA/CA-flavoured slotted MAC over the same disk Medium.
///
/// Within a slot, backlogged nodes contend in a random priority order; a
/// node transmits only if it passes its persistence check AND senses the
/// medium idle — i.e. no already-committed transmitter's disk covers it.
/// Carrier sensing removes most collisions among mutually audible nodes
/// but NOT hidden-terminal collisions (a transmitter covering the receiver
/// while inaudible at the sender), so the receiver-centric interference
/// measure keeps predicting loss — which is exactly the point of comparing
/// it against slotted ALOHA in the experiments.

namespace rim::mac {

class CsmaMac {
 public:
  struct Params {
    double persistence = 0.5;        ///< P(attempt | backlogged, idle)
    double path_loss_alpha = 2.0;
    std::uint32_t max_retries = 64;
  };

  CsmaMac(const Medium& medium, Params params, std::uint64_t seed);

  void offer(Frame frame);
  void step(double slot_index);
  [[nodiscard]] const MacStats& stats() const { return stats_; }
  void finalize();

 private:
  struct Queued {
    Frame frame;
    std::uint32_t attempts = 0;
  };

  /// True iff some committed transmitter's disk covers node u.
  [[nodiscard]] bool medium_busy_at(NodeId u) const;

  const Medium& medium_;
  Params params_;
  sim::Rng rng_;
  std::vector<std::deque<Queued>> queues_;
  std::vector<std::uint8_t> transmitting_;
  std::vector<NodeId> order_;  // per-slot contention order
  MacStats stats_;
};

}  // namespace rim::mac
