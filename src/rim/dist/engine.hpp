#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/graph/graph.hpp"

/// \file engine.hpp
/// Synchronous round-based message-passing engine (the LOCAL model on the
/// UDG), for executing topology control the way a radio network would:
/// nodes only talk to UDG neighbors, one message batch per round.
///
/// The engine enforces the communication graph (messages to non-neighbors
/// are a protocol bug and fail hard in debug builds) and accounts messages
/// and payload volume — the cost model the distributed topology-control
/// literature (XTC, LMST, CBTC) optimises.

namespace rim::dist {

/// A protocol message. Payload is a flat double vector — positions, ids and
/// distances all fit; `kind` disambiguates message types within a protocol.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint32_t kind = 0;
  std::vector<double> payload;
};

struct ExecutionStats {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t payload_doubles = 0;
};

/// A distributed protocol, driven by the engine:
///  - send(u, round) produces u's outgoing messages for the round;
///  - receive(u, round, inbox) delivers everything addressed to u;
///  - rounds() says how many rounds the protocol needs (known a priori for
///    the local protocols implemented here).
class Protocol {
 public:
  virtual ~Protocol() = default;
  [[nodiscard]] virtual std::size_t rounds() const = 0;
  [[nodiscard]] virtual std::vector<Message> send(NodeId u, std::size_t round) = 0;
  virtual void receive(NodeId u, std::size_t round,
                       std::span<const Message> inbox) = 0;
};

/// Run \p protocol over the communication graph \p udg. Returns the cost
/// accounting; protocol results are read from the protocol object itself.
[[nodiscard]] ExecutionStats run_protocol(const graph::Graph& udg,
                                          Protocol& protocol);

}  // namespace rim::dist
