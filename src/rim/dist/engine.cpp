#include "rim/dist/engine.hpp"

#include <cassert>

namespace rim::dist {

ExecutionStats run_protocol(const graph::Graph& udg, Protocol& protocol) {
  ExecutionStats stats;
  stats.rounds = protocol.rounds();
  const std::size_t n = udg.node_count();
  std::vector<std::vector<Message>> inbox(n);

  for (std::size_t round = 0; round < stats.rounds; ++round) {
    for (auto& box : inbox) box.clear();
    // Collection phase: every node emits; the engine checks the edges.
    for (NodeId u = 0; u < n; ++u) {
      for (Message& m : protocol.send(u, round)) {
        assert(m.from == u && "message must be stamped with its sender");
        assert(udg.has_edge(m.from, m.to) &&
               "protocol tried to message a non-neighbor");
        ++stats.messages;
        stats.payload_doubles += m.payload.size();
        inbox[m.to].push_back(std::move(m));
      }
    }
    // Delivery phase: synchronous — all of a round's messages arrive
    // together before anyone acts on them.
    for (NodeId u = 0; u < n; ++u) {
      protocol.receive(u, round, inbox[u]);
    }
  }
  return stats;
}

}  // namespace rim::dist
