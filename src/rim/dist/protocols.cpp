#include "rim/dist/protocols.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <tuple>

namespace rim::dist {

std::vector<Message> PositionExchangeProtocol::send(NodeId u, std::size_t round) {
  if (round != 0) return send_extra(u, round);
  std::vector<Message> out;
  out.reserve(udg_.degree(u));
  for (NodeId v : udg_.neighbors(u)) {
    out.push_back(Message{u, v, /*kind=*/0, {points_[u].x, points_[u].y}});
  }
  return out;
}

void PositionExchangeProtocol::receive(NodeId u, std::size_t round,
                                       std::span<const Message> inbox) {
  if (round == 0) {
    for (const Message& m : inbox) {
      assert(m.kind == 0 && m.payload.size() == 2);
      neighbor_position_[u][m.from] = {m.payload[0], m.payload[1]};
    }
    on_positions_ready(u);
  } else {
    receive_extra(u, round, inbox);
  }
  if (round + 1 == rounds()) finish(u);
}

// --- NNF ---------------------------------------------------------------

void DistributedNnf::finish(NodeId u) {
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const auto& [v, pos] : neighbor_position_[u]) {
    const double d2 = geom::dist2(points_[u], pos);
    if (d2 < best_d2 || (d2 == best_d2 && v < choice_[u])) {
      best_d2 = d2;
      choice_[u] = v;
    }
  }
}

graph::Graph DistributedNnf::result() const {
  graph::Graph out(points_.size());
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (choice_[u] != kInvalidNode) out.add_edge(u, choice_[u]);
  }
  return out;
}

// --- XTC ---------------------------------------------------------------

void DistributedXtc::finish(NodeId u) {
  const auto& heard = neighbor_position_[u];
  // Rank of `other` seen from position `at` (distance, id) — the same total
  // order the centralized algorithm uses.
  const auto rank = [](geom::Vec2 at, geom::Vec2 other_pos, NodeId other) {
    return std::pair{geom::dist2(at, other_pos), other};
  };
  for (const auto& [v, v_pos] : heard) {
    bool dropped = false;
    for (const auto& [w, w_pos] : heard) {
      if (w == v) continue;
      // w ≺_u v and w ≺_v u. The latter implies d(v,w) <= d(v,u) <= radius,
      // so w is guaranteed to be v's UDG neighbor — no 2-hop info needed.
      if (rank(points_[u], w_pos, w) < rank(points_[u], v_pos, v) &&
          rank(v_pos, w_pos, w) < rank(v_pos, points_[u], u)) {
        dropped = true;
        break;
      }
    }
    if (!dropped) kept_[u].push_back(v);
  }
  std::sort(kept_[u].begin(), kept_[u].end());
}

graph::Graph DistributedXtc::result() const {
  graph::Graph out(points_.size());
  for (NodeId u = 0; u < points_.size(); ++u) {
    for (NodeId v : kept_[u]) {
      if (v < u) continue;
      // The drop rule is symmetric, so v kept u too; assert in debug.
      assert(std::binary_search(kept_[v].begin(), kept_[v].end(), u));
      out.add_edge(u, v);
    }
  }
  return out;
}

// --- LMST --------------------------------------------------------------

namespace {

using Weight = std::tuple<double, NodeId, NodeId>;

Weight edge_weight(geom::Vec2 pa, geom::Vec2 pb, NodeId a, NodeId b) {
  if (a > b) {
    std::swap(a, b);
    std::swap(pa, pb);
  }
  return {geom::dist2(pa, pb), a, b};
}

}  // namespace

std::vector<Message> DistributedLmst::send_extra(NodeId u, std::size_t round) {
  assert(round == 1);
  (void)round;
  std::vector<Message> out;
  out.reserve(selected_[u].size());
  for (NodeId v : selected_[u]) {
    out.push_back(Message{u, v, /*kind=*/1, {}});
  }
  return out;
}

void DistributedLmst::receive_extra(NodeId u, std::size_t round,
                                    std::span<const Message> inbox) {
  assert(round == 1);
  (void)round;
  for (const Message& m : inbox) {
    assert(m.kind == 1);
    confirmed_[u].push_back(m.from);
  }
  std::sort(confirmed_[u].begin(), confirmed_[u].end());
}

void DistributedLmst::on_positions_ready(NodeId u) {
  if (neighbor_position_[u].empty()) return;

  // Closed neighborhood, u first (mirrors the centralized lmst()).
  std::vector<NodeId> local{u};
  std::vector<geom::Vec2> pos{points_[u]};
  for (const auto& [v, p] : neighbor_position_[u]) {
    local.push_back(v);
    pos.push_back(p);
  }
  const std::size_t m = local.size();
  const double r2 = radius_ * radius_;

  constexpr Weight kInfinite{std::numeric_limits<double>::infinity(),
                             kInvalidNode, kInvalidNode};
  std::vector<bool> in_tree(m, false);
  std::vector<Weight> best(m, kInfinite);
  std::vector<std::size_t> best_from(m, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < m; ++j) {
    best[j] = edge_weight(pos[0], pos[j], u, local[j]);
  }
  for (std::size_t step = 1; step < m; ++step) {
    std::size_t pick = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && (pick == m || best[j] < best[pick])) pick = j;
    }
    if (pick == m || best[pick] == kInfinite) break;
    in_tree[pick] = true;
    if (best_from[pick] == 0) selected_[u].push_back(local[pick]);
    for (std::size_t j = 0; j < m; ++j) {
      if (in_tree[j]) continue;
      // Geometric adjacency between two heard neighbors.
      if (geom::dist2(pos[pick], pos[j]) > r2) continue;
      const Weight w = edge_weight(pos[pick], pos[j], local[pick], local[j]);
      if (w < best[j]) {
        best[j] = w;
        best_from[j] = pick;
      }
    }
  }
  std::sort(selected_[u].begin(), selected_[u].end());
}

graph::Graph DistributedLmst::result() const {
  graph::Graph out(points_.size());
  for (NodeId u = 0; u < points_.size(); ++u) {
    for (NodeId v : selected_[u]) {
      if (v < u) continue;
      if (std::binary_search(confirmed_[u].begin(), confirmed_[u].end(), v)) {
        out.add_edge(u, v);
      }
    }
  }
  return out;
}

}  // namespace rim::dist
