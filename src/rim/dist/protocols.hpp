#pragma once

#include <map>
#include <span>

#include "rim/dist/engine.hpp"
#include "rim/geom/vec2.hpp"

/// \file protocols.hpp
/// Distributed executions of the local topology-control algorithms.
///
/// Each protocol runs in the LOCAL model over the UDG and must produce
/// exactly the centralized construction — the equivalence is asserted by
/// tests, making the centralized code the specification and the protocol
/// its distributed refinement.
///
///  - DistributedNnf:  1 round  (positions)        -> nearest_neighbor_forest
///  - DistributedXtc:  1 round  (positions)        -> xtc
///  - DistributedLmst: 2 rounds (positions, then   -> lmst
///                     "I-selected-you" notices)
///
/// A subtlety the implementations exploit: on a *geometric* UDG, adjacency
/// between two of u's neighbors is decidable from their positions
/// (d <= radius), so XTC's common-neighbor test and LMST's local-MST
/// construction need no 2-hop tables; only LMST's mutual-selection
/// intersection requires a second round.
///
/// Message cost per node: deg(u) messages in round 0 (2-double payload);
/// LMST adds <= 6 zero-payload notices in round 1.

namespace rim::dist {

/// Common base: nodes know their own position and discover neighbors'
/// positions in round 0.
class PositionExchangeProtocol : public Protocol {
 public:
  PositionExchangeProtocol(std::span<const geom::Vec2> points,
                           const graph::Graph& udg)
      : points_(points), udg_(udg), neighbor_position_(points.size()) {}

  [[nodiscard]] std::vector<Message> send(NodeId u, std::size_t round) override;
  void receive(NodeId u, std::size_t round,
               std::span<const Message> inbox) override;

  /// The topology this node set agreed on (valid after run_protocol).
  [[nodiscard]] virtual graph::Graph result() const = 0;

 protected:
  /// Hook: called once per node after the final round's delivery.
  virtual void finish(NodeId u) = 0;
  /// Hook: called once per node right after round 0's positions arrive —
  /// the place to compute anything later rounds must send.
  virtual void on_positions_ready(NodeId) {}
  /// Hook for protocols with extra rounds; default: no extra messages.
  [[nodiscard]] virtual std::vector<Message> send_extra(NodeId, std::size_t) {
    return {};
  }
  virtual void receive_extra(NodeId, std::size_t, std::span<const Message>) {}

  std::span<const geom::Vec2> points_;
  const graph::Graph& udg_;
  /// Per node: positions learned from neighbors (id -> position).
  std::vector<std::map<NodeId, geom::Vec2>> neighbor_position_;
};

/// Every node links to the closest neighbor it heard from.
class DistributedNnf final : public PositionExchangeProtocol {
 public:
  using PositionExchangeProtocol::PositionExchangeProtocol;
  [[nodiscard]] std::size_t rounds() const override { return 1; }
  [[nodiscard]] graph::Graph result() const override;

 private:
  void finish(NodeId u) override;
  std::vector<NodeId> choice_ = std::vector<NodeId>(points_.size(), kInvalidNode);
};

/// XTC from 1-hop positions: u drops the link to v iff some w (heard by u)
/// is better ranked than v for u and better ranked than u for v — all
/// distances computable from the received positions.
class DistributedXtc final : public PositionExchangeProtocol {
 public:
  using PositionExchangeProtocol::PositionExchangeProtocol;
  [[nodiscard]] std::size_t rounds() const override { return 1; }
  [[nodiscard]] graph::Graph result() const override;

 private:
  void finish(NodeId u) override;
  std::vector<std::vector<NodeId>> kept_ =
      std::vector<std::vector<NodeId>>(points_.size());
};

/// LMST: after round 0 every node runs Prim over its closed neighborhood
/// (adjacency inferred geometrically) and keeps its incident local-MST
/// edges; round 1 sends an "I selected you" notice along each selected
/// link, and the final topology keeps exactly the mutually selected pairs —
/// the same intersection the centralized lmst() computes.
class DistributedLmst final : public PositionExchangeProtocol {
 public:
  DistributedLmst(std::span<const geom::Vec2> points, const graph::Graph& udg,
                  double radius = 1.0)
      : PositionExchangeProtocol(points, udg), radius_(radius) {}
  [[nodiscard]] std::size_t rounds() const override { return 2; }
  [[nodiscard]] graph::Graph result() const override;

 private:
  void finish(NodeId) override {}  // result() reads selected_/confirmed_
  void on_positions_ready(NodeId u) override;
  [[nodiscard]] std::vector<Message> send_extra(NodeId u,
                                                std::size_t round) override;
  void receive_extra(NodeId u, std::size_t round,
                     std::span<const Message> inbox) override;

  double radius_;
  std::vector<std::vector<NodeId>> selected_ =
      std::vector<std::vector<NodeId>>(points_.size());
  std::vector<std::vector<NodeId>> confirmed_ =
      std::vector<std::vector<NodeId>>(points_.size());
};

}  // namespace rim::dist
