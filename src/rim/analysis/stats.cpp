#include "rim/analysis/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rim::analysis {

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (double x : samples) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  s.median = quantile(samples, 0.5);
  return s;
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  // RIM_LINT_ALLOW(float-equality): sums of squares are exactly 0.0 iff a
  // series is constant — the undefined-correlation guard.
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rim::analysis
