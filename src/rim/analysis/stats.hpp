#pragma once

#include <span>
#include <vector>

/// \file stats.hpp
/// Descriptive statistics over experiment samples.

namespace rim::analysis {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 for n < 2
  double median = 0.0;
};

/// Summarise \p samples (empty input yields a zeroed Summary).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// q-th quantile (0 <= q <= 1) by linear interpolation between order
/// statistics. Empty input yields 0.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Pearson correlation of two equal-length series (0 when degenerate).
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace rim::analysis
