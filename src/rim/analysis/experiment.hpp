#pragma once

#include <functional>
#include <iosfwd>
#include <string>

/// \file experiment.hpp
/// Tiny harness for the figure/table regeneration binaries: uniform banner,
/// paper cross-reference, and wall-clock accounting, so every bench/ binary
/// produces output in the same shape recorded by EXPERIMENTS.md.

namespace rim::analysis {

struct ExperimentInfo {
  std::string id;         ///< e.g. "E5"
  std::string title;      ///< human title
  std::string paper_ref;  ///< e.g. "Figure 8, Theorem 5.1"
  std::string expected;   ///< the paper's qualitative prediction
};

/// Print the banner, run \p body, print the footer with elapsed seconds.
void run_experiment(const ExperimentInfo& info, std::ostream& out,
                    const std::function<void(std::ostream&)>& body);

}  // namespace rim::analysis
