#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "rim/io/json.hpp"

/// \file experiment.hpp
/// Tiny harness for the figure/table regeneration binaries: uniform banner,
/// paper cross-reference, and wall-clock accounting, so every bench/ binary
/// produces output in the same shape recorded by EXPERIMENTS.md.

namespace rim::analysis {

struct ExperimentInfo {
  std::string id;         ///< e.g. "E5"
  std::string title;      ///< human title
  std::string paper_ref;  ///< e.g. "Figure 8, Theorem 5.1"
  std::string expected;   ///< the paper's qualitative prediction
};

/// Print the banner, run \p body, print the footer with elapsed seconds.
void run_experiment(const ExperimentInfo& info, std::ostream& out,
                    const std::function<void(std::ostream&)>& body);

/// Stamp a bench JSON document with its provenance: `git_sha` and
/// `build_type` (the RIM_GIT_SHA / RIM_BUILD_TYPE compile definitions,
/// "unknown" when absent) and `hardware_threads` (the runner). Every
/// BENCH_*.json writer calls this so tools/check_bench.py can refuse to
/// compare numbers across hosts or build configurations instead of
/// false-failing the trajectory gate on them.
void stamp_bench(io::JsonObject& doc);

}  // namespace rim::analysis
