#include "rim/analysis/fit.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace rim::analysis {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n < 2) return fit;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  // RIM_LINT_ALLOW(float-equality): sxx is a sum of squares; it is exactly
  // 0.0 iff every x equals the mean — the degenerate-fit guard.
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i] > 0.0 && ys[i] > 0.0);
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return fit_linear(lx, ly);
}

}  // namespace rim::analysis
