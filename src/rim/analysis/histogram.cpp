#include "rim/analysis/histogram.hpp"

#include <algorithm>
#include <ostream>

namespace rim::analysis {

Histogram Histogram::of_values(std::span<const std::uint32_t> samples) {
  Histogram h;
  for (std::uint32_t s : samples) {
    if (s >= h.buckets_.size()) h.buckets_.resize(s + 1, 0);
    ++h.buckets_[s];
    ++h.total_;
  }
  return h;
}

std::uint32_t Histogram::mode() const {
  std::uint32_t best = 0;
  for (std::uint32_t k = 0; k < buckets_.size(); ++k) {
    if (buckets_[k] > buckets_[best]) best = k;
  }
  return best;
}

void Histogram::render(std::ostream& out, std::size_t width) const {
  std::uint64_t peak = 0;
  for (std::uint64_t c : buckets_) peak = std::max(peak, c);
  if (peak == 0) {
    out << "(empty histogram)\n";
    return;
  }
  for (std::uint32_t k = 0; k < buckets_.size(); ++k) {
    if (buckets_[k] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        (buckets_[k] * width + peak - 1) / peak);  // ceil, so nonzero shows
    out << (k < 10 ? "  " : (k < 100 ? " " : "")) << k << " | "
        << std::string(bar, '#') << "  (" << buckets_[k] << ")\n";
  }
}

}  // namespace rim::analysis
