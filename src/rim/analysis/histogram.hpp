#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Integer-valued histograms with an ASCII renderer, used to display
/// per-node interference distributions in experiments and examples.

namespace rim::analysis {

class Histogram {
 public:
  /// Count occurrences of each value in \p samples (bucket k == value k).
  static Histogram of_values(std::span<const std::uint32_t> samples);

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint32_t mode() const;  ///< bucket with the max count

  /// Render as one line per non-empty bucket:
  /// "  3 | #########  (27)" with bars scaled to \p width characters.
  void render(std::ostream& out, std::size_t width = 50) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace rim::analysis
