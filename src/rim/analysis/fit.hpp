#pragma once

#include <span>

/// \file fit.hpp
/// Least-squares fits used to check asymptotic *shape* against the paper:
/// e.g. A_exp's interference should scale like n^0.5 (Theorem 5.1), the
/// linear chain's like n^1. A log-log linear fit recovers the exponent.

namespace rim::analysis {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope * x + intercept.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Fit y = c * x^k via log-log least squares; returns {slope = k,
/// intercept = ln c, r_squared}. All inputs must be positive.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs,
                                      std::span<const double> ys);

}  // namespace rim::analysis
