#include "rim/analysis/experiment.hpp"

#include <chrono>
#include <iomanip>
#include <ostream>

namespace rim::analysis {

void run_experiment(const ExperimentInfo& info, std::ostream& out,
                    const std::function<void(std::ostream&)>& body) {
  const std::string rule(72, '=');
  out << rule << '\n'
      << "[" << info.id << "] " << info.title << '\n'
      << "paper: " << info.paper_ref << '\n'
      << "expectation: " << info.expected << '\n'
      << rule << '\n';
  const auto start = std::chrono::steady_clock::now();
  body(out);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  out << std::string(72, '-') << '\n'
      << "[" << info.id << "] done in " << std::fixed << std::setprecision(3)
      << elapsed << " s\n\n";
  out << std::defaultfloat << std::setprecision(6);
}

}  // namespace rim::analysis
