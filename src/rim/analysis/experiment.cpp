#include "rim/analysis/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>
#include <thread>

namespace rim::analysis {

void run_experiment(const ExperimentInfo& info, std::ostream& out,
                    const std::function<void(std::ostream&)>& body) {
  const std::string rule(72, '=');
  out << rule << '\n'
      << "[" << info.id << "] " << info.title << '\n'
      << "paper: " << info.paper_ref << '\n'
      << "expectation: " << info.expected << '\n'
      << rule << '\n';
  const auto start = std::chrono::steady_clock::now();
  body(out);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  out << std::string(72, '-') << '\n'
      << "[" << info.id << "] done in " << std::fixed << std::setprecision(3)
      << elapsed << " s\n\n";
  out << std::defaultfloat << std::setprecision(6);
}

void stamp_bench(io::JsonObject& doc) {
// The build system stamps this TU alone (set_source_files_properties), so
// provenance changes rebuild one object file, not the library.
#if defined(RIM_GIT_SHA)
  doc["git_sha"] = io::Json(std::string(RIM_GIT_SHA));
#else
  doc["git_sha"] = io::Json(std::string("unknown"));
#endif
#if defined(RIM_BUILD_TYPE)
  doc["build_type"] = io::Json(std::string(RIM_BUILD_TYPE));
#else
  doc["build_type"] = io::Json(std::string("unknown"));
#endif
  doc["hardware_threads"] =
      io::Json(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace rim::analysis
