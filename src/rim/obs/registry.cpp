#include "rim/obs/registry.hpp"

namespace rim::obs {

void Registry::add_source(std::string name, Producer producer) {
  const common::MutexLock lock(mutex_);
  sources_[std::move(name)] = std::move(producer);
}

void Registry::remove_source(const std::string& name) {
  const common::MutexLock lock(mutex_);
  sources_.erase(name);
}

std::size_t Registry::size() const {
  const common::MutexLock lock(mutex_);
  return sources_.size();
}

io::Json Registry::snapshot() const {
  const common::MutexLock lock(mutex_);
  io::JsonObject o;
  for (const auto& [name, producer] : sources_) {
    o[name] = producer ? producer() : io::Json(nullptr);
  }
  return io::Json(std::move(o));
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace rim::obs
