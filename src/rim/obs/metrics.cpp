#include "rim/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace rim::obs {

std::ostream& operator<<(std::ostream& out, const Counter& counter) {
  return out << counter.value();
}

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  max_.store(other.max(), std::memory_order_relaxed);
  return *this;
}

namespace {

/// Log-linear bucket index: v in 0..3 maps to bucket v exactly; for v >= 4
/// the octave is bit_width(v) and the next kSubBits bits below the top bit
/// select the linear sub-bucket inside it.
std::size_t bucket_index(std::uint64_t value) noexcept {
  if (value < 4) return static_cast<std::size_t>(value);
  const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
  const std::size_t sub = static_cast<std::size_t>(
      (value >> (w - 1 - Histogram::kSubBits)) & (Histogram::kSubBuckets - 1));
  return 4 + (w - 3) * Histogram::kSubBuckets + sub;
}

/// Largest value that maps to bucket `b` (inverse of bucket_index).
std::uint64_t bucket_upper_bound(std::size_t b) noexcept {
  if (b < 4) return b;
  const std::size_t w = (b - 4) / Histogram::kSubBuckets + 3;
  const std::uint64_t sub = (b - 4) % Histogram::kSubBuckets;
  const std::uint64_t base = std::uint64_t{1} << (w - 1);
  const std::uint64_t step = std::uint64_t{1} << (w - 1 - Histogram::kSubBits);
  // (base - 1) first: for w == 64 the naive base + kSubBuckets * step would
  // wrap before the - 1 brings it back to UINT64_MAX.
  return (base - 1) + (sub + 1) * step;
}

}  // namespace

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank quantile: 1-based rank ceil(q * n); walk buckets until
  // the cumulative count reaches it.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Clamp the bucket's upper bound to the true maximum so quantiles
      // never exceed an observed value.
      return std::min(bucket_upper_bound(b), max());
    }
  }
  return max();
}

io::Json Histogram::to_json() const {
  io::JsonObject o;
  o["count"] = io::Json(count());
  o["sum"] = io::Json(sum());
  o["mean"] = io::Json(mean());
  o["max"] = io::Json(max());
  o["p50"] = io::Json(quantile(0.50));
  o["p90"] = io::Json(quantile(0.90));
  o["p99"] = io::Json(quantile(0.99));
  return io::Json(std::move(o));
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rim::obs
