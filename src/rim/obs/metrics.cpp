#include "rim/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace rim::obs {

std::ostream& operator<<(std::ostream& out, const Counter& counter) {
  return out << counter.value();
}

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(other.buckets_[b].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  max_.store(other.max(), std::memory_order_relaxed);
  return *this;
}

void Histogram::record(std::uint64_t value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank quantile: 1-based rank ceil(q * n); walk buckets until
  // the cumulative count reaches it.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper bound of bucket b (0 for b == 0, else 2^b - 1), clamped to
      // the true maximum so quantiles never exceed an observed value.
      const std::uint64_t bound =
          b == 0 ? 0
                 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
      return std::min(bound, max());
    }
  }
  return max();
}

io::Json Histogram::to_json() const {
  io::JsonObject o;
  o["count"] = io::Json(count());
  o["sum"] = io::Json(sum());
  o["mean"] = io::Json(mean());
  o["max"] = io::Json(max());
  o["p50"] = io::Json(quantile(0.50));
  o["p90"] = io::Json(quantile(0.90));
  o["p99"] = io::Json(quantile(0.99));
  return io::Json(std::move(o));
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace rim::obs
