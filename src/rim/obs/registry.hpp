#pragma once

#include <functional>
#include <map>
#include <string>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/io/json.hpp"

/// \file registry.hpp
/// Named metric sources, aggregated into one JSON snapshot.
///
/// A Registry maps a source name to a producer returning that source's
/// current metrics as io::Json. Long-lived subsystems (a Scenario, the MAC
/// simulator, a workload driver) register a producer once; a bench then
/// emits `registry.snapshot()` as its machine-readable trajectory artifact
/// (BENCH_2.json). Producers are invoked under the registry lock, so
/// registration and snapshotting may race freely; the producers themselves
/// read relaxed-atomic obs counters and need no further synchronisation.

namespace rim::obs {

class Registry {
 public:
  using Producer = std::function<io::Json()>;

  /// Register (or replace) the producer behind \p name.
  void add_source(std::string name, Producer producer) RIM_EXCLUDES(mutex_);

  /// Drop the producer behind \p name (no-op when absent). Call before a
  /// registered object goes out of scope.
  void remove_source(const std::string& name) RIM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const RIM_EXCLUDES(mutex_);

  /// One JSON object keyed by source name; keys are emitted in
  /// lexicographic order, so snapshots of the same state are byte-identical.
  /// Producers run under the registry lock: a producer that calls back into
  /// this registry would self-deadlock (and the RIM_EXCLUDES annotations
  /// flag exactly that when the analysis can see the call chain).
  [[nodiscard]] io::Json snapshot() const RIM_EXCLUDES(mutex_);

  /// Process-wide registry for code without an obvious owner to thread one
  /// through. Prefer passing an explicit Registry where possible.
  static Registry& global();

 private:
  mutable common::Mutex mutex_;
  /// std::map, not unordered: snapshot() iterates it into the JSON artifact,
  /// and serialization paths must be iteration-order deterministic
  /// (rim_lint rule `unordered-container`).
  std::map<std::string, Producer> sources_ RIM_GUARDED_BY(mutex_);
};

}  // namespace rim::obs
