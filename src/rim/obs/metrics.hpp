#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>

#include "rim/io/json.hpp"

/// \file metrics.hpp
/// First-class observability primitives: counters, histograms, timers.
///
/// The engine's hot paths (core::Scenario deltas and batches, the dynamic
/// grid, the local search, the MAC event loop) all record into these types
/// instead of ad-hoc integer fields. Everything here is:
///
///  - thread-safe: counters and histogram buckets are relaxed atomics, so
///    the parallel batch pipeline's concurrently executing disk tasks can
///    record without locks (sums are order-independent, hence deterministic);
///  - cheap: one relaxed fetch_add per record — a few nanoseconds, safe to
///    leave enabled in Release hot loops;
///  - machine-readable: every type dumps through io::Json, and
///    obs::Registry (registry.hpp) aggregates named sources into the JSON
///    trajectory artifacts the benches emit (BENCH_2.json).
///
/// Copying snapshots the current values (the atomics are re-seated), so
/// stats structs made of these types keep their owners copyable —
/// core::Scenario relies on this for assess()'s probe copies.
///
/// Thread-safety contract (DESIGN.md §8): everything in this header is
/// lock-free — there is deliberately no mutex for the clang thread-safety
/// analysis to track. The checked invariant is the inverse one: none of
/// these types may ever grow a RIM_GUARDED_BY member, because hot-path
/// recording must stay wait-free (tests/obs_stress_test.cpp pins the
/// exact-total semantics under concurrent writers).

namespace rim::obs {

/// Monotone event counter (relaxed atomic).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  Counter& operator++() noexcept {
    add();
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    add(n);
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT

  [[nodiscard]] io::Json to_json() const { return io::Json(value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

std::ostream& operator<<(std::ostream& out, const Counter& counter);

/// Fixed-footprint log-linear histogram: each power-of-two octave is split
/// into 2^kSubBits linear sub-buckets, so the relative bucket width is
/// 1/2^kSubBits (~25% at kSubBits == 2) instead of the ~100% of plain
/// power-of-two buckets. Values 0..3 get exact buckets of their own. Good
/// enough for latency-in-ns and size distributions, needs no configuration,
/// and records lock-free from any thread.
class Histogram {
 public:
  /// Sub-bucket bits per octave. 2 gives 4 linear slices per power of two,
  /// i.e. quantile estimates within ~25% of the true value.
  static constexpr std::size_t kSubBits = 2;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Buckets 0..3 hold v == 0..3 exactly; every bit width w in 3..64 then
  /// contributes kSubBuckets log-linear buckets: 4 + 62 * 4 = 252.
  static constexpr std::size_t kBuckets = 4 + 62 * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  /// 0 when the histogram is empty. Never below the true value, and at
  /// most ~1/2^kSubBits (~25%) above it — the log-linear resolution.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// {count, sum, mean, max, p50, p90, p99}.
  [[nodiscard]] io::Json to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Monotonic wall-clock now, in nanoseconds (steady_clock).
[[nodiscard]] std::uint64_t now_ns();

/// RAII scope timer: on destruction adds the elapsed nanoseconds to a
/// Counter and optionally records them into a Histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& ns_sink, Histogram* histogram = nullptr)
      : sink_(ns_sink), histogram_(histogram), start_(now_ns()) {}
  ~ScopedTimer() {
    const std::uint64_t elapsed = now_ns() - start_;
    sink_.add(elapsed);
    if (histogram_ != nullptr) histogram_->record(elapsed);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter& sink_;
  Histogram* histogram_;
  std::uint64_t start_;
};

}  // namespace rim::obs
