#include "rim/graph/shortest_path.hpp"

#include <queue>

namespace rim::graph {

std::vector<double> dijkstra(const Graph& g, NodeId source,
                             const std::function<double(Edge)>& weight) {
  std::vector<double> dist(g.node_count(), kUnreachable);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (NodeId v : g.neighbors(u)) {
      const double w = weight(Edge{u, v}.canonical());
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        heap.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

std::vector<double> euclidean_dijkstra(const Graph& g, NodeId source,
                                       std::span<const geom::Vec2> points) {
  return dijkstra(g, source,
                  [points](Edge e) { return geom::dist(points[e.u], points[e.v]); });
}

std::vector<double> euclidean_apsp(const Graph& g,
                                   std::span<const geom::Vec2> points) {
  const std::size_t n = g.node_count();
  std::vector<double> matrix(n * n, kUnreachable);
  for (NodeId s = 0; s < n; ++s) {
    const auto row = euclidean_dijkstra(g, s, points);
    std::copy(row.begin(), row.end(), matrix.begin() + static_cast<std::ptrdiff_t>(s * n));
  }
  return matrix;
}

}  // namespace rim::graph
