#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file udg.hpp
/// Unit Disk Graph construction (Clark, Colbourn, Johnson 1990): nodes u, v
/// share an edge iff |uv| <= radius. This is the paper's network model
/// (Section 3); all topology-control algorithms take a UDG as input.

namespace rim::graph {

/// Build the UDG over \p points with the given closed connection radius
/// (default 1, the paper's convention). Uses a uniform grid internally;
/// O(n + m) expected for bounded-density inputs.
[[nodiscard]] Graph build_udg(std::span<const geom::Vec2> points, double radius = 1.0);

/// O(n^2) reference construction; oracle for tests.
[[nodiscard]] Graph build_udg_brute(std::span<const geom::Vec2> points,
                                    double radius = 1.0);

}  // namespace rim::graph
