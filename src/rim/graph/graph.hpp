#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "rim/common/types.hpp"

/// \file graph.hpp
/// Undirected simple graph on a dense node set 0..n-1.
///
/// This is the representation used for both the input communication graph
/// (typically a Unit Disk Graph) and for the resulting topologies produced
/// by topology-control algorithms. The paper's model (Section 3) only
/// considers symmetric links, so the structure is strictly undirected.

namespace rim::graph {

/// An undirected edge; canonical form keeps u < v.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  [[nodiscard]] constexpr Edge canonical() const {
    return u <= v ? Edge{u, v} : Edge{v, u};
  }
  friend constexpr bool operator==(Edge a, Edge b) = default;
  friend constexpr auto operator<=>(Edge a, Edge b) = default;
};

class Graph {
 public:
  Graph() = default;

  /// An edgeless graph on \p node_count nodes.
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  /// Graph with the given edges. Duplicate and self-loop edges are rejected
  /// with an assertion in debug builds and ignored in release builds.
  Graph(std::size_t node_count, std::span<const Edge> edges);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Add the undirected edge {u, v}. Returns false (and leaves the graph
  /// unchanged) if the edge already exists or u == v.
  bool add_edge(NodeId u, NodeId v);

  /// Remove the undirected edge {u, v} if present; returns whether it was.
  ///
  /// Contract: the edge list is compacted in place, so the positional
  /// EdgeId of every edge stored after the removed one shifts down by one.
  /// Never hold an EdgeId (an index into edges()) across remove_edge —
  /// re-derive indices from edges() afterwards. Removal is O(E) for the
  /// edge-list scan plus O(deg) for the adjacency fixups; adjacency and
  /// edge list are kept consistent (asserted in debug builds).
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Neighbors of \p u in insertion order.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return adjacency_[u];
  }

  [[nodiscard]] std::size_t degree(NodeId u) const { return adjacency_[u].size(); }

  /// Maximum degree over all nodes (0 for the empty graph). In the paper's
  /// notation this is Δ when applied to the input UDG.
  [[nodiscard]] std::size_t max_degree() const;

  /// All edges, in insertion order, canonical (u < v). The index of an
  /// edge in this span is its EdgeId; remove_edge invalidates the ids of
  /// all edges inserted after the removed one (see remove_edge).
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Append an isolated node, returning its id.
  NodeId add_node();

  /// Union of this graph's and \p other's edge sets (node counts must match).
  [[nodiscard]] Graph union_with(const Graph& other) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace rim::graph
