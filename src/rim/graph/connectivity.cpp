#include "rim/graph/connectivity.hpp"

#include <queue>

#include "rim/graph/union_find.hpp"

namespace rim::graph {

std::vector<std::uint32_t> component_labels(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> label(n, 0xffffffffu);
  std::uint32_t next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != 0xffffffffu) continue;
    label[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == 0xffffffffu) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t component_count(const Graph& g) {
  if (g.node_count() == 0) return 0;
  const auto labels = component_labels(g);
  std::uint32_t max_label = 0;
  for (std::uint32_t l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

bool is_connected(const Graph& g) { return component_count(g) <= 1; }

bool preserves_connectivity(const Graph& reference, const Graph& topology) {
  if (reference.node_count() != topology.node_count()) return false;
  const auto ref = component_labels(reference);
  const auto top = component_labels(topology);
  // Same-component equivalence relations must coincide. Because both label
  // assignments are canonical (ordered by smallest node id in component),
  // equality of label vectors is exactly equality of the partitions.
  return ref == top;
}

bool is_forest(const Graph& g) {
  UnionFind uf(g.node_count());
  for (Edge e : g.edges()) {
    if (!uf.unite(e.u, e.v)) return false;  // edge closed a cycle
  }
  return true;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> hops(g.node_count(), kUnreachableHops);
  std::queue<NodeId> queue;
  hops[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (NodeId v : g.neighbors(u)) {
      if (hops[v] == kUnreachableHops) {
        hops[v] = hops[u] + 1;
        queue.push(v);
      }
    }
  }
  return hops;
}

}  // namespace rim::graph
