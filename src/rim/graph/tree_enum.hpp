#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "rim/graph/graph.hpp"

/// \file tree_enum.hpp
/// Exhaustive enumeration of labeled spanning trees via Prüfer sequences.
///
/// Cayley's formula gives n^(n-2) labeled trees on n nodes; each corresponds
/// bijectively to a Prüfer sequence of length n-2. The exact-optimum
/// baseline of the experiments (Section 5 approximation ratios) enumerates
/// all of them for small n, which is why this lives in the graph substrate
/// rather than in a bench.

namespace rim::graph {

/// Decode a Prüfer sequence (entries in [0, n)) into its tree's edge list.
/// \p n must be >= 2 and seq.size() == n - 2.
[[nodiscard]] std::vector<Edge> prufer_decode(std::span<const NodeId> seq,
                                              std::size_t n);

/// Encode a labeled tree on n >= 2 nodes into its Prüfer sequence.
/// \p tree must be a tree (n-1 edges, connected).
[[nodiscard]] std::vector<NodeId> prufer_encode(const Graph& tree);

/// Invoke \p fn once per labeled spanning tree on n nodes, passing the edge
/// list (valid only during the call). Stops early when \p fn returns false.
/// Visits exactly n^(n-2) trees (1 tree for n == 2, 1 empty forest handled
/// as no-op for n < 2), so keep n <= ~9.
void for_each_labeled_tree(std::size_t n,
                           const std::function<bool(std::span<const Edge>)>& fn);

/// Number of labeled trees on n nodes, n^(n-2) (n >= 1; 1 for n <= 2).
[[nodiscard]] std::uint64_t cayley_count(std::size_t n);

}  // namespace rim::graph
