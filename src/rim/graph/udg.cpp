#include "rim/graph/udg.hpp"

#include "rim/geom/grid_index.hpp"

namespace rim::graph {

Graph build_udg(std::span<const geom::Vec2> points, double radius) {
  Graph g(points.size());
  if (points.empty() || radius <= 0.0) return g;
  const geom::GridIndex index(points, radius);
  for (NodeId u = 0; u < points.size(); ++u) {
    index.for_each_in_disk(points[u], radius, [&](NodeId v) {
      if (v > u) g.add_edge(u, v);
    });
  }
  return g;
}

Graph build_udg_brute(std::span<const geom::Vec2> points, double radius) {
  Graph g(points.size());
  const double r2 = radius * radius;
  for (NodeId u = 0; u < points.size(); ++u) {
    for (NodeId v = u + 1; v < points.size(); ++v) {
      if (geom::dist2(points[u], points[v]) <= r2) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace rim::graph
