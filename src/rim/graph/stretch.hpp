#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file stretch.hpp
/// Spanner quality of a topology relative to its input graph.
///
/// Classic topology control trades interference/degree against path quality;
/// the experiment harness reports these metrics alongside interference so
/// the cost of low-interference topologies is visible.

namespace rim::graph {

struct StretchReport {
  /// max over connected pairs (u,v) of d_topology(u,v) / d_reference(u,v)
  /// with Euclidean edge weights. 1.0 when the topology keeps all shortest
  /// paths; infinity if it disconnects a connected pair.
  double max_euclidean_stretch = 1.0;
  /// Same ratio measured in hop counts.
  double max_hop_stretch = 1.0;
  /// Averages over all connected pairs.
  double mean_euclidean_stretch = 1.0;
  double mean_hop_stretch = 1.0;
};

/// Measure the stretch of \p topology against \p reference (same node set,
/// positions \p points). O(n * m log n); intended for experiment-scale n.
[[nodiscard]] StretchReport measure_stretch(const Graph& reference,
                                            const Graph& topology,
                                            std::span<const geom::Vec2> points);

}  // namespace rim::graph
