#pragma once

#include <functional>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file shortest_path.hpp
/// Weighted single-source shortest paths (Dijkstra). Used for spanner /
/// stretch measurements and by LISE's spanner test.

namespace rim::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Dijkstra from \p source with edge weights from \p weight (must be >= 0).
/// dist[v] == kUnreachable when v is not reachable.
[[nodiscard]] std::vector<double> dijkstra(
    const Graph& g, NodeId source, const std::function<double(Edge)>& weight);

/// Dijkstra with Euclidean edge lengths.
[[nodiscard]] std::vector<double> euclidean_dijkstra(
    const Graph& g, NodeId source, std::span<const geom::Vec2> points);

/// All-pairs Euclidean shortest-path matrix (n x n, row-major). O(n m log n);
/// intended for the modest instance sizes of the experiments.
[[nodiscard]] std::vector<double> euclidean_apsp(
    const Graph& g, std::span<const geom::Vec2> points);

}  // namespace rim::graph
