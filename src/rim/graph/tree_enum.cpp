#include "rim/graph/tree_enum.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace rim::graph {

std::vector<Edge> prufer_decode(std::span<const NodeId> seq, std::size_t n) {
  assert(n >= 2 && seq.size() == n - 2);
  std::vector<std::uint32_t> degree(n, 1);
  for (NodeId s : seq) {
    assert(s < n);
    ++degree[s];
  }

  std::vector<Edge> edges;
  edges.reserve(n - 1);
  // `ptr` scans for the smallest leaf; `leaf` tracks the current one. This
  // is the classic O(n) decoding (amortised via the monotone pointer).
  NodeId ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId s : seq) {
    edges.push_back(Edge{leaf, s}.canonical());
    if (--degree[s] == 1 && s < ptr) {
      leaf = s;  // s became a leaf smaller than the scan pointer
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.push_back(Edge{leaf, static_cast<NodeId>(n - 1)}.canonical());
  return edges;
}

std::vector<NodeId> prufer_encode(const Graph& tree) {
  const std::size_t n = tree.node_count();
  assert(n >= 2 && tree.edge_count() == n - 1);
  std::vector<std::uint32_t> degree(n);
  std::vector<std::vector<NodeId>> adj(n);
  for (Edge e : tree.edges()) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (NodeId v = 0; v < n; ++v) degree[v] = static_cast<std::uint32_t>(adj[v].size());

  std::vector<bool> removed(n, false);
  std::vector<NodeId> seq;
  seq.reserve(n - 2);
  NodeId ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (std::size_t step = 0; step + 2 < n; ++step) {
    removed[leaf] = true;
    NodeId parent = kInvalidNode;
    for (NodeId w : adj[leaf]) {
      if (!removed[w]) {
        parent = w;
        break;
      }
    }
    seq.push_back(parent);
    if (--degree[parent] == 1 && parent < ptr) {
      leaf = parent;
    } else {
      ++ptr;
      while (degree[ptr] != 1 || removed[ptr]) ++ptr;
      leaf = ptr;
    }
  }
  return seq;
}

void for_each_labeled_tree(std::size_t n,
                           const std::function<bool(std::span<const Edge>)>& fn) {
  if (n < 2) return;
  if (n == 2) {
    const Edge e{0, 1};
    fn(std::span<const Edge>(&e, 1));
    return;
  }
  std::vector<NodeId> seq(n - 2, 0);
  while (true) {
    const std::vector<Edge> edges = prufer_decode(seq, n);
    if (!fn(edges)) return;
    // Odometer increment over base-n digits.
    std::size_t i = 0;
    while (i < seq.size()) {
      if (++seq[i] < n) break;
      seq[i] = 0;
      ++i;
    }
    if (i == seq.size()) return;
  }
}

std::uint64_t cayley_count(std::size_t n) {
  if (n <= 2) return 1;
  std::uint64_t result = 1;
  for (std::size_t i = 0; i + 2 < n; ++i) result *= n;
  return result;
}

}  // namespace rim::graph
