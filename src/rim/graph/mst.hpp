#pragma once

#include <functional>
#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file mst.hpp
/// Minimum spanning forests over geometric graphs.
///
/// The Euclidean MST of the input UDG is both a classic topology-control
/// output (GMST) and the seed solution of the interference local search.
/// A generic weighted Kruskal is also exposed so LIFE (Burkhart et al.) can
/// reuse it with interference-based edge weights.

namespace rim::graph {

/// Kruskal over the edges of \p g ordered by \p weight (ties broken by the
/// canonical edge id order, keeping results deterministic). Returns a
/// minimum spanning forest: one tree per connected component of g.
[[nodiscard]] Graph kruskal(const Graph& g,
                            const std::function<double(Edge)>& weight);

/// Euclidean minimum spanning forest of \p g with node positions \p points.
[[nodiscard]] Graph euclidean_mst(const Graph& g, std::span<const geom::Vec2> points);

/// Prim's algorithm on the complete Euclidean graph over \p points
/// (no UDG restriction); O(n^2), used as an oracle and for small instances.
[[nodiscard]] Graph euclidean_mst_complete(std::span<const geom::Vec2> points);

/// Total Euclidean length of all edges.
[[nodiscard]] double total_length(const Graph& g, std::span<const geom::Vec2> points);

}  // namespace rim::graph
