#include "rim/graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace rim::graph {

Graph::Graph(std::size_t node_count, std::span<const Edge> edges)
    : adjacency_(node_count) {
  for (Edge e : edges) {
    const bool added = add_edge(e.u, e.v);
    assert(added && "duplicate or degenerate edge in Graph construction");
    (void)added;
  }
}

bool Graph::add_edge(NodeId u, NodeId v) {
  assert(u < node_count() && v < node_count());
  if (u == v || has_edge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back(Edge{u, v}.canonical());
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  assert(u < node_count() && v < node_count());
  const Edge target = Edge{u, v}.canonical();
  const auto it = std::find(edges_.begin(), edges_.end(), target);
  if (it == edges_.end()) return false;
  edges_.erase(it);
  // The edge list and both adjacency lists must agree; a missing adjacency
  // entry here means the two representations diverged.
  auto& au = adjacency_[u];
  const auto at_u = std::find(au.begin(), au.end(), v);
  assert(at_u != au.end() && "edge list and adjacency out of sync");
  au.erase(at_u);
  auto& av = adjacency_[v];
  const auto at_v = std::find(av.begin(), av.end(), u);
  assert(at_v != av.end() && "edge list and adjacency out of sync");
  av.erase(at_v);
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  assert(u < node_count() && v < node_count());
  // Scan the smaller adjacency list.
  const auto& a = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                               : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& a : adjacency_) best = std::max(best, a.size());
  return best;
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

Graph Graph::union_with(const Graph& other) const {
  assert(node_count() == other.node_count());
  Graph out(node_count());
  for (Edge e : edges_) out.add_edge(e.u, e.v);
  for (Edge e : other.edges_) out.add_edge(e.u, e.v);
  return out;
}

}  // namespace rim::graph
