#include "rim/graph/stretch.hpp"

#include <algorithm>

#include "rim/graph/connectivity.hpp"
#include "rim/graph/shortest_path.hpp"

namespace rim::graph {

StretchReport measure_stretch(const Graph& reference, const Graph& topology,
                              std::span<const geom::Vec2> points) {
  StretchReport report;
  const std::size_t n = reference.node_count();
  if (n < 2) return report;

  double sum_euclid = 0.0;
  double sum_hop = 0.0;
  std::size_t pairs = 0;

  for (NodeId s = 0; s < n; ++s) {
    const auto ref_d = euclidean_dijkstra(reference, s, points);
    const auto top_d = euclidean_dijkstra(topology, s, points);
    const auto ref_h = bfs_hops(reference, s);
    const auto top_h = bfs_hops(topology, s);
    for (NodeId v = s + 1; v < n; ++v) {
      if (ref_d[v] == kUnreachable) continue;  // pair not connected in input
      ++pairs;
      // RIM_LINT_ALLOW(float-equality): 0.0 is an exact sentinel for a
      // zero-length reference path (coincident endpoints), never computed.
      const double es = top_d[v] == kUnreachable || ref_d[v] == 0.0
                            ? std::numeric_limits<double>::infinity()
                            : top_d[v] / ref_d[v];
      const double hs = top_h[v] == kUnreachableHops
                            ? std::numeric_limits<double>::infinity()
                            : static_cast<double>(top_h[v]) /
                                  static_cast<double>(std::max<std::uint32_t>(ref_h[v], 1));
      report.max_euclidean_stretch = std::max(report.max_euclidean_stretch, es);
      report.max_hop_stretch = std::max(report.max_hop_stretch, hs);
      sum_euclid += es;
      sum_hop += hs;
    }
  }
  if (pairs > 0) {
    report.mean_euclidean_stretch = sum_euclid / static_cast<double>(pairs);
    report.mean_hop_stretch = sum_hop / static_cast<double>(pairs);
  }
  return report;
}

}  // namespace rim::graph
