#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "rim/common/types.hpp"

/// \file union_find.hpp
/// Disjoint-set forest with union by size and path halving. Used by Kruskal,
/// connectivity checks, and the branch-and-bound exact optimiser.

namespace rim::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  /// Representative of x's component.
  [[nodiscard]] NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merge the components of a and b; returns false if already merged.
  bool unite(NodeId a, NodeId b) {
    NodeId ra = find(a);
    NodeId rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  [[nodiscard]] bool same(NodeId a, NodeId b) { return find(a) == find(b); }

  /// Number of disjoint components.
  [[nodiscard]] std::size_t component_count() const { return components_; }

  /// Size of x's component.
  [[nodiscard]] std::size_t component_size(NodeId x) { return size_[find(x)]; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace rim::graph
