#pragma once

#include <vector>

#include "rim/graph/graph.hpp"

/// \file connectivity.hpp
/// Connectivity queries. The central correctness requirement on every
/// topology-control algorithm in the paper is that the output preserves the
/// connectivity of the input graph (Section 3); these helpers verify it.

namespace rim::graph {

/// Component label (0-based, ordered by smallest contained node id) for
/// every node.
[[nodiscard]] std::vector<std::uint32_t> component_labels(const Graph& g);

/// Number of connected components (n == 0 gives 0).
[[nodiscard]] std::size_t component_count(const Graph& g);

/// True iff the whole graph is one connected component (true for n <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// True iff \p topology connects exactly whatever \p reference connects:
/// two nodes are in the same component of the topology iff they are in the
/// same component of the reference. This is the paper's "maintains
/// connectivity of the given network" requirement, stated per component so
/// disconnected inputs are handled too.
[[nodiscard]] bool preserves_connectivity(const Graph& reference, const Graph& topology);

/// True iff g is a forest (acyclic); combined with preserves_connectivity
/// this characterises the tree-per-component topologies the paper studies.
[[nodiscard]] bool is_forest(const Graph& g);

/// Breadth-first hop distances from \p source (kUnreachableHops if not
/// reachable).
inline constexpr std::uint32_t kUnreachableHops = 0xffffffffu;
[[nodiscard]] std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

}  // namespace rim::graph
