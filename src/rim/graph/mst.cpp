#include "rim/graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "rim/graph/union_find.hpp"

namespace rim::graph {

Graph kruskal(const Graph& g, const std::function<double(Edge)>& weight) {
  const std::span<const Edge> edges = g.edges();
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> w(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) w[i] = weight(edges[i]);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (w[a] != w[b]) return w[a] < w[b];
    return edges[a] < edges[b];
  });

  Graph forest(g.node_count());
  UnionFind uf(g.node_count());
  for (std::size_t i : order) {
    if (uf.unite(edges[i].u, edges[i].v)) forest.add_edge(edges[i].u, edges[i].v);
  }
  return forest;
}

Graph euclidean_mst(const Graph& g, std::span<const geom::Vec2> points) {
  return kruskal(g, [points](Edge e) { return geom::dist(points[e.u], points[e.v]); });
}

Graph euclidean_mst_complete(std::span<const geom::Vec2> points) {
  const std::size_t n = points.size();
  Graph tree(n);
  if (n <= 1) return tree;

  // Prim with O(n^2) dense scan.
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_d2(n, std::numeric_limits<double>::infinity());
  std::vector<NodeId> best_from(n, kInvalidNode);
  in_tree[0] = true;
  for (NodeId v = 1; v < n; ++v) {
    best_d2[v] = geom::dist2(points[0], points[v]);
    best_from[v] = 0;
  }
  for (std::size_t step = 1; step < n; ++step) {
    NodeId pick = kInvalidNode;
    double pick_d2 = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && (best_d2[v] < pick_d2 ||
                          (best_d2[v] == pick_d2 && (pick == kInvalidNode || v < pick)))) {
        pick = v;
        pick_d2 = best_d2[v];
      }
    }
    in_tree[pick] = true;
    tree.add_edge(best_from[pick], pick);
    for (NodeId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d2 = geom::dist2(points[pick], points[v]);
      if (d2 < best_d2[v]) {
        best_d2[v] = d2;
        best_from[v] = pick;
      }
    }
  }
  return tree;
}

double total_length(const Graph& g, std::span<const geom::Vec2> points) {
  double sum = 0.0;
  for (Edge e : g.edges()) sum += geom::dist(points[e.u], points[e.v]);
  return sum;
}

}  // namespace rim::graph
