#include "rim/ext2d/grid_hub.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "rim/geom/aabb.hpp"

namespace rim::ext2d {

namespace {

using CellKey = std::pair<std::int64_t, std::int64_t>;

}  // namespace

GridHubResult grid_hub_2d(std::span<const geom::Vec2> points,
                          const graph::Graph& udg, double radius,
                          std::size_t spacing_override) {
  GridHubResult result;
  result.topology = graph::Graph(points.size());
  if (points.empty()) return result;

  result.delta = udg.max_degree();
  result.hub_spacing =
      spacing_override != 0
          ? spacing_override
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(std::sqrt(static_cast<double>(result.delta)))));

  // Cell side radius/sqrt(2): cell diameter == radius, so intra-cell links
  // are always UDG edges.
  const double side = radius / std::sqrt(2.0);
  const geom::Aabb box = geom::bounding_box(points);
  const auto cell_of = [&](geom::Vec2 p) -> CellKey {
    return {static_cast<std::int64_t>(std::floor((p.x - box.lo.x) / side)),
            static_cast<std::int64_t>(std::floor((p.y - box.lo.y) / side))};
  };

  std::map<CellKey, std::vector<NodeId>> cells;
  for (NodeId v = 0; v < points.size(); ++v) cells[cell_of(points[v])].push_back(v);
  result.occupied_cells = cells.size();

  // Intra-cell wiring, mirroring A_gen's segments.
  for (auto& [key, members] : cells) {
    std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
      return points[a] < points[b] || (points[a] == points[b] && a < b);
    });
    std::vector<NodeId> hubs;
    for (std::size_t i = 0; i < members.size(); i += result.hub_spacing) {
      hubs.push_back(members[i]);
    }
    if (hubs.back() != members.back()) hubs.push_back(members.back());
    for (std::size_t h = 0; h + 1 < hubs.size(); ++h) {
      result.topology.add_edge(hubs[h], hubs[h + 1]);
    }
    for (NodeId v : members) {
      if (std::find(hubs.begin(), hubs.end(), v) != hubs.end()) continue;
      NodeId best = hubs.front();
      double best_d2 = geom::dist2(points[v], points[best]);
      for (NodeId h : hubs) {
        const double d2 = geom::dist2(points[v], points[h]);
        if (d2 < best_d2 || (d2 == best_d2 && h < best)) {
          best = h;
          best_d2 = d2;
        }
      }
      result.topology.add_edge(v, best);
    }
    result.hubs.insert(result.hubs.end(), hubs.begin(), hubs.end());
  }
  std::sort(result.hubs.begin(), result.hubs.end());

  // Inter-cell stitching: a UDG edge can span cells up to Chebyshev
  // distance 2 (side = radius/√2). For every such occupied pair, connect
  // the closest cross pair when it is within the radius — it is no longer
  // than any cross UDG edge, so stitching exists wherever the UDG connects
  // the two cells.
  const double r2 = radius * radius;
  for (auto it = cells.begin(); it != cells.end(); ++it) {
    const auto& [key, members] = *it;
    for (std::int64_t dx = -2; dx <= 2; ++dx) {
      for (std::int64_t dy = -2; dy <= 2; ++dy) {
        if (dx < 0 || (dx == 0 && dy <= 0)) continue;  // each pair once
        const auto other = cells.find({key.first + dx, key.second + dy});
        if (other == cells.end()) continue;
        NodeId best_u = kInvalidNode;
        NodeId best_v = kInvalidNode;
        double best_d2 = std::numeric_limits<double>::infinity();
        for (NodeId u : members) {
          for (NodeId v : other->second) {
            const double d2 = geom::dist2(points[u], points[v]);
            if (d2 < best_d2) {
              best_d2 = d2;
              best_u = u;
              best_v = v;
            }
          }
        }
        if (best_d2 <= r2) result.topology.add_edge(best_u, best_v);
      }
    }
  }
  return result;
}

}  // namespace rim::ext2d
