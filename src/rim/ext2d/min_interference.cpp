#include "rim/ext2d/min_interference.hpp"

#include "rim/core/interference.hpp"
#include "rim/ext2d/grid_hub.hpp"
#include "rim/graph/mst.hpp"
#include "rim/topology/mst_topology.hpp"

namespace rim::ext2d {

MinInterferenceResult min_interference_2d(std::span<const geom::Vec2> points,
                                          const graph::Graph& udg,
                                          std::size_t rounds,
                                          const core::EvalOptions& eval) {
  // Candidate seeds, each reduced to a spanning forest (the hub topology
  // can contain cycles; a Euclidean-minimal forest of its edges keeps the
  // same components).
  struct Seed {
    const char* name;
    graph::Graph forest;
  };
  std::vector<Seed> seeds;
  seeds.push_back({"mst", topology::mst_topology(points, udg)});
  seeds.push_back(
      {"grid_hub", graph::euclidean_mst(grid_hub_2d(points, udg).topology, points)});

  const Seed* best = nullptr;
  std::uint32_t best_i = 0;
  for (const Seed& seed : seeds) {
    const std::uint32_t i = core::graph_interference(seed.forest, points, eval);
    if (best == nullptr || i < best_i) {
      best = &seed;
      best_i = i;
    }
  }

  highway::LocalSearchParams params;
  params.max_rounds = rounds;
  params.max_candidates_per_cut = 32;  // keep dense UDGs tractable
  params.eval = eval;
  const highway::LocalSearchResult ls =
      highway::local_search_min_interference(points, udg, best->forest, params);

  MinInterferenceResult result;
  result.tree = ls.tree;
  result.interference = ls.interference;
  result.seed_name = best->name;
  result.swaps = ls.swaps_applied;
  result.candidates_probed = ls.candidates_probed;
  return result;
}

}  // namespace rim::ext2d
