#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"
#include "rim/highway/local_search.hpp"

/// \file min_interference.hpp
/// Heuristic minimum-interference spanning forests in the plane.
///
/// The paper leaves higher dimensions open (Section 6). This module
/// combines the pieces the library already has into a practical 2-D
/// optimiser: seed with the best of several constructions (MST and the
/// grid-hub A_gen lift), reduce to a spanning forest, then run the
/// edge-swap local search on the receiver-centric objective.

namespace rim::ext2d {

struct MinInterferenceResult {
  graph::Graph tree;            ///< spanning forest of the UDG's components
  std::uint32_t interference = 0;
  const char* seed_name = "";   ///< which seed won
  std::size_t swaps = 0;
  std::size_t candidates_probed = 0;  ///< local-search probe count (obs)
};

/// Optimise over \p points / \p udg. \p rounds bounds the local-search
/// sweeps (each sweep is O(n * m * eval) — keep instances moderate).
/// \p eval configures every interference evaluation involved (seed scoring
/// and local-search probing) through the shared core::EvalOptions surface.
[[nodiscard]] MinInterferenceResult min_interference_2d(
    std::span<const geom::Vec2> points, const graph::Graph& udg,
    std::size_t rounds = 4, const core::EvalOptions& eval = {});

}  // namespace rim::ext2d
