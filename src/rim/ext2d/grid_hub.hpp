#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file grid_hub.hpp
/// A_gen lifted to the plane — the paper's "adaptation of our approach to
/// higher dimensions remains an open problem" (Section 6), answered
/// constructively and evaluated empirically by experiment E13.
///
/// The plane is partitioned into square cells of side radius/√2, so any two
/// nodes of one cell can talk directly (cell diameter = radius). Within a
/// cell, every ⌈√Δ⌉-th node (in (x, y, id) order, plus the last) becomes a
/// hub; hubs are chained, regular nodes attach to their nearest hub in the
/// cell. Cells whose node sets are UDG-adjacent (their closest cross pair
/// is within the radius) are stitched through that closest pair. The
/// construction preserves UDG connectivity by the same argument as
/// Theorem 5.4's segments, and empirically yields O(√Δ) interference on
/// 2-D deployments (it is a heuristic — the paper proves nothing in 2-D).

namespace rim::ext2d {

struct GridHubResult {
  graph::Graph topology;
  std::vector<NodeId> hubs;       ///< all hubs, ascending
  std::size_t delta = 0;          ///< max UDG degree
  std::size_t hub_spacing = 1;    ///< ⌈√Δ⌉ or the override
  std::size_t occupied_cells = 0;
};

/// Build the 2-D hub topology. \p spacing_override replaces ⌈√Δ⌉ when
/// non-zero (for the ablation).
[[nodiscard]] GridHubResult grid_hub_2d(std::span<const geom::Vec2> points,
                                        const graph::Graph& udg,
                                        double radius = 1.0,
                                        std::size_t spacing_override = 0);

}  // namespace rim::ext2d
