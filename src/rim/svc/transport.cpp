#include "rim/svc/transport.hpp"

namespace rim::svc {

TransportStatus LoopbackTransport::roundtrip(std::string_view frame,
                                             std::string& response_frame,
                                             std::string& error) {
  std::size_t consumed = 0;
  std::string payload;
  const FrameStatus status = try_decode_frame(
      frame, handler_.max_frame_bytes(), consumed, payload);
  if (status == FrameStatus::kTooLarge) {
    // Mirror the TCP reader: answer bad_frame (the id is unknowable
    // without the payload) — over a socket the connection would drop.
    response_frame = encode_frame(make_error(
        0, code::kBadFrame,
        "frame exceeds max_frame_bytes (" +
            std::to_string(handler_.max_frame_bytes()) + ")"));
    return TransportStatus::kOk;
  }
  if (status != FrameStatus::kFrame || consumed != frame.size()) {
    error = "loopback roundtrip requires exactly one complete frame";
    return TransportStatus::kError;
  }
  response_frame = encode_frame(handler_.handle(payload));
  return TransportStatus::kOk;
}

}  // namespace rim::svc
