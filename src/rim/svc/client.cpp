#include "rim/svc/client.hpp"

#include <limits>
#include <utility>

namespace rim::svc {

namespace {

/// Read an unsigned field out of a result document (fallback on absence).
std::uint64_t u64_field(const io::Json& result, const char* key,
                        std::uint64_t fallback = 0) {
  const io::Json* field = result.find(key);
  std::uint64_t value = 0;
  if (field == nullptr ||
      !json_to_u64(*field, std::numeric_limits<std::uint64_t>::max(), value)) {
    return fallback;
  }
  return value;
}

}  // namespace

bool Client::transport_failure(std::string message) {
  error_ = std::move(message);
  error_code_ = "transport";
  return false;
}

bool Client::call(const std::string& command, io::JsonObject params,
                  io::Json& result) {
  error_.clear();
  error_code_.clear();
  last_response_payload_.clear();
  last_id_ = next_id_++;
  params["cmd"] = io::Json(command);
  params["id"] = io::Json(last_id_);
  const std::string payload = io::Json(std::move(params)).dump();
  std::string response_frame;
  std::string transport_error;
  if (!transport_.roundtrip(encode_frame(payload), response_frame,
                            transport_error)) {
    return transport_failure(std::move(transport_error));
  }
  std::size_t consumed = 0;
  const FrameStatus status = try_decode_frame(
      response_frame, std::numeric_limits<std::uint32_t>::max(), consumed,
      last_response_payload_);
  if (status != FrameStatus::kFrame) {
    return transport_failure("transport returned an incomplete frame");
  }
  io::Json response;
  std::string parse_error;
  if (!io::Json::parse(last_response_payload_, response, parse_error)) {
    return transport_failure("unparseable response: " + parse_error);
  }
  if (!response.is_object()) {
    return transport_failure("response is not a JSON object");
  }
  const io::Json* ok = response.find("ok");
  if (ok == nullptr) {
    return transport_failure("response carries no 'ok' field");
  }
  if (!ok->as_bool(false)) {
    const io::Json* code = response.find("code");
    const io::Json* message = response.find("error");
    const std::string* code_str =
        code != nullptr ? code->as_string() : nullptr;
    const std::string* message_str =
        message != nullptr ? message->as_string() : nullptr;
    error_code_ = code_str != nullptr ? *code_str : std::string(code::kInternal);
    error_ = message_str != nullptr ? *message_str : "unknown error";
    return false;
  }
  const io::Json* result_field = response.find("result");
  result = result_field != nullptr ? *result_field : io::Json();
  return true;
}

bool Client::ping() {
  io::Json result;
  return call(cmd::kPing, {}, result);
}

bool Client::create_session(std::uint64_t& session) {
  io::Json result;
  if (!call(cmd::kCreateSession, {}, result)) return false;
  session = u64_field(result, "session");
  return true;
}

bool Client::close_session(std::uint64_t session) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  io::Json result;
  return call(cmd::kCloseSession, std::move(params), result);
}

bool Client::add_node(std::uint64_t session, double x, double y,
                      NodeId& node) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["x"] = io::Json(x);
  params["y"] = io::Json(y);
  io::Json result;
  if (!call(cmd::kAddNode, std::move(params), result)) return false;
  node = static_cast<NodeId>(u64_field(result, "node", kInvalidNode));
  return true;
}

bool Client::remove_node(std::uint64_t session, NodeId v, NodeId& renamed) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["v"] = io::Json(v);
  io::Json result;
  if (!call(cmd::kRemoveNode, std::move(params), result)) return false;
  renamed = static_cast<NodeId>(u64_field(result, "renamed", kInvalidNode));
  return true;
}

bool Client::add_edge(std::uint64_t session, NodeId u, NodeId v,
                      bool& added) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["u"] = io::Json(u);
  params["v"] = io::Json(v);
  io::Json result;
  if (!call(cmd::kAddEdge, std::move(params), result)) return false;
  const io::Json* field = result.find("added");
  added = field != nullptr && field->as_bool(false);
  return true;
}

bool Client::remove_edge(std::uint64_t session, NodeId u, NodeId v,
                         bool& removed) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["u"] = io::Json(u);
  params["v"] = io::Json(v);
  io::Json result;
  if (!call(cmd::kRemoveEdge, std::move(params), result)) return false;
  const io::Json* field = result.find("removed");
  removed = field != nullptr && field->as_bool(false);
  return true;
}

bool Client::move_node(std::uint64_t session, NodeId v, double x, double y) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["v"] = io::Json(v);
  params["x"] = io::Json(x);
  params["y"] = io::Json(y);
  io::Json result;
  return call(cmd::kMove, std::move(params), result);
}

bool Client::apply_batch(std::uint64_t session,
                         std::span<const core::Mutation> batch,
                         core::BatchResult& result) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  io::JsonArray mutations;
  mutations.reserve(batch.size());
  for (const core::Mutation& mutation : batch) {
    mutations.push_back(mutation_to_json(mutation));
  }
  params["batch"] = io::Json(std::move(mutations));
  io::Json reply;
  if (!call(cmd::kApplyBatch, std::move(params), reply)) return false;
  result.applied = static_cast<std::size_t>(u64_field(reply, "applied"));
  result.disk_tasks =
      static_cast<std::size_t>(u64_field(reply, "disk_tasks"));
  result.recounts = static_cast<std::size_t>(u64_field(reply, "recounts"));
  result.waves = static_cast<std::size_t>(u64_field(reply, "waves"));
  result.abort_index =
      static_cast<std::size_t>(u64_field(reply, "abort_index"));
  const io::Json* deferred = reply.find("deferred");
  const io::Json* aborted = reply.find("aborted");
  result.deferred = deferred != nullptr && deferred->as_bool(false);
  result.aborted = aborted != nullptr && aborted->as_bool(false);
  return true;
}

bool Client::assess(std::uint64_t session,
                    std::span<const core::Mutation> mutations,
                    io::Json& assessment) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  io::JsonArray array;
  array.reserve(mutations.size());
  for (const core::Mutation& mutation : mutations) {
    array.push_back(mutation_to_json(mutation));
  }
  params["mutations"] = io::Json(std::move(array));
  return call(cmd::kAssess, std::move(params), assessment);
}

bool Client::query_interference(std::uint64_t session, io::Json& result) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  return call(cmd::kQueryInterference, std::move(params), result);
}

bool Client::query_interference_of(std::uint64_t session, NodeId v,
                                   std::uint32_t& value) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["v"] = io::Json(v);
  io::Json result;
  if (!call(cmd::kQueryInterference, std::move(params), result)) return false;
  value = static_cast<std::uint32_t>(u64_field(result, "value"));
  return true;
}

bool Client::snapshot(std::uint64_t session, io::Json& snapshot_doc) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  io::Json result;
  if (!call(cmd::kSnapshot, std::move(params), result)) return false;
  const io::Json* doc = result.find("snapshot");
  if (doc == nullptr) {
    return transport_failure("snapshot result carries no 'snapshot' field");
  }
  snapshot_doc = *doc;
  return true;
}

bool Client::restore(std::uint64_t session, const io::Json& snapshot_doc) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  params["snapshot"] = snapshot_doc;
  io::Json result;
  return call(cmd::kRestore, std::move(params), result);
}

bool Client::session_stats(std::uint64_t session, io::Json& stats) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  return call(cmd::kSessionStats, std::move(params), stats);
}

bool Client::metrics(io::Json& snapshot) {
  return call(cmd::kMetrics, {}, snapshot);
}

bool Client::shutdown() {
  io::Json result;
  return call(cmd::kShutdown, {}, result);
}

}  // namespace rim::svc
