#include "rim/svc/client.hpp"

#include <limits>
#include <utility>

namespace rim::svc {

namespace {

/// Read an unsigned field out of a result document (fallback on absence).
std::uint64_t u64_field(const io::Json& result, const char* key,
                        std::uint64_t fallback = 0) {
  const io::Json* field = result.find(key);
  std::uint64_t value = 0;
  if (field == nullptr ||
      !json_to_u64(*field, std::numeric_limits<std::uint64_t>::max(), value)) {
    return fallback;
  }
  return value;
}

io::JsonObject session_params(std::uint64_t session) {
  io::JsonObject params;
  params["session"] = io::Json(session);
  return params;
}

}  // namespace

common::Unexpected<SvcError> Client::fail(SvcError error) {
  error_ = error.message;
  error_code_ = error.wire_code();
  return common::Unexpected(std::move(error));
}

common::Unexpected<SvcError> Client::transport_failure(std::string message) {
  return fail(SvcError{SvcErrorCode::kTransport, std::move(message)});
}

SvcResult<io::Json> Client::try_call(const std::string& command,
                                     io::JsonObject params) {
  error_.clear();
  error_code_.clear();
  last_response_payload_.clear();
  last_id_ = next_id_++;
  params["cmd"] = io::Json(command);
  params["id"] = io::Json(last_id_);
  const std::string payload = io::Json(std::move(params)).dump();
  std::string response_frame;
  std::string transport_error;
  const TransportStatus transport_status = transport_.roundtrip(
      encode_frame(payload), response_frame, transport_error);
  if (transport_status == TransportStatus::kConnectionLost) {
    // A torn exchange is typed distinctly from other transport failures:
    // the request may or may not have been applied, and the shard
    // router's failover path keys on exactly this code (DESIGN.md §14).
    return fail(
        SvcError{SvcErrorCode::kConnectionLost, std::move(transport_error)});
  }
  if (transport_status != TransportStatus::kOk) {
    return transport_failure(std::move(transport_error));
  }
  std::size_t consumed = 0;
  const FrameStatus status = try_decode_frame(
      response_frame, std::numeric_limits<std::uint32_t>::max(), consumed,
      last_response_payload_);
  if (status != FrameStatus::kFrame) {
    return transport_failure("transport returned an incomplete frame");
  }
  io::Json response;
  std::string parse_error;
  if (!io::Json::parse(last_response_payload_, response, parse_error)) {
    return transport_failure("unparseable response: " + parse_error);
  }
  if (!response.is_object()) {
    return transport_failure("response is not a JSON object");
  }
  const io::Json* ok = response.find("ok");
  if (ok == nullptr) {
    return transport_failure("response carries no 'ok' field");
  }
  if (!ok->as_bool(false)) {
    const io::Json* code = response.find("code");
    const io::Json* message = response.find("error");
    const std::string* code_str =
        code != nullptr ? code->as_string() : nullptr;
    const std::string* message_str =
        message != nullptr ? message->as_string() : nullptr;
    SvcError error;
    error.code = code_str != nullptr ? code_from_wire(*code_str)
                                     : SvcErrorCode::kInternal;
    error.message = message_str != nullptr ? *message_str : "unknown error";
    // Preserve the verbatim wire code (even an unrecognised one) for the
    // string-based diagnostics accessors.
    error_ = error.message;
    error_code_ = code_str != nullptr ? *code_str : error.wire_code();
    return common::Unexpected(std::move(error));
  }
  const io::Json* result_field = response.find("result");
  return result_field != nullptr ? *result_field : io::Json();
}

SvcResult<void> Client::try_ping() {
  SvcResult<io::Json> result = try_call(cmd::kPing, {});
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return {};
}

SvcResult<std::uint64_t> Client::try_create_session() {
  SvcResult<io::Json> result = try_call(cmd::kCreateSession, {});
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return u64_field(*result, "session");
}

SvcResult<void> Client::try_close_session(std::uint64_t session) {
  SvcResult<io::Json> result =
      try_call(cmd::kCloseSession, session_params(session));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return {};
}

SvcResult<NodeId> Client::try_add_node(std::uint64_t session, double x,
                                       double y) {
  io::JsonObject params = session_params(session);
  params["x"] = io::Json(x);
  params["y"] = io::Json(y);
  SvcResult<io::Json> result = try_call(cmd::kAddNode, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return static_cast<NodeId>(u64_field(*result, "node", kInvalidNode));
}

SvcResult<NodeId> Client::try_remove_node(std::uint64_t session, NodeId v) {
  io::JsonObject params = session_params(session);
  params["v"] = io::Json(v);
  SvcResult<io::Json> result = try_call(cmd::kRemoveNode, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return static_cast<NodeId>(u64_field(*result, "renamed", kInvalidNode));
}

SvcResult<bool> Client::try_add_edge(std::uint64_t session, NodeId u,
                                     NodeId v) {
  io::JsonObject params = session_params(session);
  params["u"] = io::Json(u);
  params["v"] = io::Json(v);
  SvcResult<io::Json> result = try_call(cmd::kAddEdge, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  const io::Json* field = result->find("added");
  return field != nullptr && field->as_bool(false);
}

SvcResult<bool> Client::try_remove_edge(std::uint64_t session, NodeId u,
                                        NodeId v) {
  io::JsonObject params = session_params(session);
  params["u"] = io::Json(u);
  params["v"] = io::Json(v);
  SvcResult<io::Json> result = try_call(cmd::kRemoveEdge, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  const io::Json* field = result->find("removed");
  return field != nullptr && field->as_bool(false);
}

SvcResult<void> Client::try_move_node(std::uint64_t session, NodeId v,
                                      double x, double y) {
  io::JsonObject params = session_params(session);
  params["v"] = io::Json(v);
  params["x"] = io::Json(x);
  params["y"] = io::Json(y);
  SvcResult<io::Json> result = try_call(cmd::kMove, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return {};
}

SvcResult<core::BatchResult> Client::try_apply_batch(
    std::uint64_t session, std::span<const core::Mutation> batch) {
  io::JsonObject params = session_params(session);
  io::JsonArray mutations;
  mutations.reserve(batch.size());
  for (const core::Mutation& mutation : batch) {
    mutations.push_back(mutation_to_json(mutation));
  }
  params["batch"] = io::Json(std::move(mutations));
  SvcResult<io::Json> reply = try_call(cmd::kApplyBatch, std::move(params));
  if (!reply.has_value()) {
    return common::Unexpected(std::move(reply).error());
  }
  core::BatchResult result;
  result.applied = static_cast<std::size_t>(u64_field(*reply, "applied"));
  result.disk_tasks =
      static_cast<std::size_t>(u64_field(*reply, "disk_tasks"));
  result.recounts = static_cast<std::size_t>(u64_field(*reply, "recounts"));
  result.waves = static_cast<std::size_t>(u64_field(*reply, "waves"));
  result.abort_index =
      static_cast<std::size_t>(u64_field(*reply, "abort_index"));
  const io::Json* deferred = reply->find("deferred");
  const io::Json* aborted = reply->find("aborted");
  result.deferred = deferred != nullptr && deferred->as_bool(false);
  result.aborted = aborted != nullptr && aborted->as_bool(false);
  return result;
}

SvcResult<io::Json> Client::try_assess(
    std::uint64_t session, std::span<const core::Mutation> mutations) {
  io::JsonObject params = session_params(session);
  io::JsonArray array;
  array.reserve(mutations.size());
  for (const core::Mutation& mutation : mutations) {
    array.push_back(mutation_to_json(mutation));
  }
  params["mutations"] = io::Json(std::move(array));
  return try_call(cmd::kAssess, std::move(params));
}

SvcResult<io::Json> Client::try_query_interference(std::uint64_t session) {
  return try_call(cmd::kQueryInterference, session_params(session));
}

SvcResult<std::uint32_t> Client::try_query_interference_of(
    std::uint64_t session, NodeId v) {
  io::JsonObject params = session_params(session);
  params["v"] = io::Json(v);
  SvcResult<io::Json> result =
      try_call(cmd::kQueryInterference, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return static_cast<std::uint32_t>(u64_field(*result, "value"));
}

SvcResult<io::Json> Client::try_snapshot(std::uint64_t session) {
  SvcResult<io::Json> result =
      try_call(cmd::kSnapshot, session_params(session));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  const io::Json* doc = result->find("snapshot");
  if (doc == nullptr) {
    return transport_failure("snapshot result carries no 'snapshot' field");
  }
  return *doc;
}

SvcResult<void> Client::try_restore(std::uint64_t session,
                                    const io::Json& snapshot_doc) {
  io::JsonObject params = session_params(session);
  params["snapshot"] = snapshot_doc;
  SvcResult<io::Json> result = try_call(cmd::kRestore, std::move(params));
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return {};
}

SvcResult<io::Json> Client::try_session_stats(std::uint64_t session) {
  return try_call(cmd::kSessionStats, session_params(session));
}

SvcResult<io::Json> Client::try_metrics() {
  return try_call(cmd::kMetrics, {});
}

SvcResult<void> Client::try_shutdown() {
  SvcResult<io::Json> result = try_call(cmd::kShutdown, {});
  if (!result.has_value()) {
    return common::Unexpected(std::move(result).error());
  }
  return {};
}

}  // namespace rim::svc
