#include "rim/svc/replica_store.hpp"

#include <utility>

namespace rim::svc {

io::Json ReplicaStoreCounters::to_json() const {
  io::JsonObject object;
  object["adopted"] = adopted.to_json();
  object["dropped"] = dropped.to_json();
  object["rejected"] = rejected.to_json();
  object["stored"] = stored.to_json();
  return io::Json(std::move(object));
}

bool ReplicaStore::put(std::uint64_t origin, std::uint64_t seq,
                       core::Snapshot snapshot, std::string& error) {
  common::MutexLock lock(store_mutex_);
  const auto it = replicas_.find(origin);
  if (it == replicas_.end() && replicas_.size() >= max_replicas_) {
    ++counters_.rejected;
    error = "replica store at capacity (" + std::to_string(max_replicas_) +
            ")";
    return false;
  }
  const std::uint64_t checksum = snapshot.payload_checksum();
  if (it != replicas_.end() && seq == it->second.seq &&
      checksum == it->second.checksum) {
    // A duplicate of the stored ship (the router retried after a torn
    // response): the replica is already durable, so answering success
    // keeps replication exactly-once instead of wedging every retry.
    return true;
  }
  if (it != replicas_.end() && seq <= it->second.seq) {
    ++counters_.rejected;
    error = "stale replica seq " + std::to_string(seq) + " for origin " +
            std::to_string(origin) + " (stored seq " +
            std::to_string(it->second.seq) + ")";
    return false;
  }
  Replica replica;
  replica.seq = seq;
  replica.checksum = checksum;
  replica.snapshot = std::move(snapshot);
  replicas_[origin] = std::move(replica);
  ++counters_.stored;
  return true;
}

bool ReplicaStore::take(std::uint64_t origin, Replica& out) {
  common::MutexLock lock(store_mutex_);
  const auto it = replicas_.find(origin);
  if (it == replicas_.end()) return false;
  out = std::move(it->second);
  replicas_.erase(it);
  ++counters_.adopted;
  return true;
}

bool ReplicaStore::drop(std::uint64_t origin) {
  common::MutexLock lock(store_mutex_);
  const bool existed = replicas_.erase(origin) != 0;
  if (existed) ++counters_.dropped;
  return existed;
}

std::size_t ReplicaStore::size() const {
  common::MutexLock lock(store_mutex_);
  return replicas_.size();
}

std::vector<std::uint64_t> ReplicaStore::origins() const {
  common::MutexLock lock(store_mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(replicas_.size());
  for (const auto& [origin, replica] : replicas_) out.push_back(origin);
  return out;
}

}  // namespace rim::svc
