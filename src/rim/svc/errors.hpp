#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "rim/common/expected.hpp"

/// \file errors.hpp
/// Typed error surface of the scenario service client.
///
/// SvcErrorCode mirrors the wire envelope codes of protocol.hpp one-to-one
/// (plus kTransport for failures below the protocol: connection loss,
/// framing, unparseable responses). svc::Client's typed calls return
/// common::Expected<T, SvcError>, so callers branch on the code instead of
/// string-comparing error_code().

namespace rim::svc {

/// One enumerator per wire error code (protocol.hpp, namespace code), plus
/// kTransport/kConnectionLost for sub-protocol failures.
enum class SvcErrorCode : std::uint8_t {
  kTransport,         ///< framing/parse failure (no envelope)
  kConnectionLost,    ///< peer vanished mid-exchange (reset/EOF/deadline);
                      ///< distinct from kTransport so the shard router can
                      ///< tell "fail over" from "give up"
  kBadFrame,          ///< "bad_frame"
  kBadRequest,        ///< "bad_request"
  kUnknownCommand,    ///< "unknown_command"
  kNoSession,         ///< "no_session"
  kNoReplica,         ///< "no_replica" (adopt_session found no replica)
  kOverloaded,        ///< "overloaded" (admission control shed the request)
  kRestoreFailed,     ///< "restore_failed"
  kFaultDisabled,     ///< "fault_disabled"
  kShutdownDisabled,  ///< "shutdown_disabled"
  kInternal,          ///< "internal" or any unrecognised wire code
};

/// Wire string of a code ("transport" for kTransport).
[[nodiscard]] const char* to_wire(SvcErrorCode code);

/// Inverse of to_wire; unrecognised strings map to kInternal, matching the
/// envelope contract that unknown codes are server-side failures.
[[nodiscard]] SvcErrorCode code_from_wire(std::string_view wire);

/// A typed service failure: the enumerated code plus the human-readable
/// message from the error envelope (or the transport's own diagnostic).
struct SvcError {
  SvcErrorCode code = SvcErrorCode::kInternal;
  std::string message;

  /// Shed by admission control — the one code worth retrying after backoff.
  [[nodiscard]] bool retryable() const {
    return code == SvcErrorCode::kOverloaded;
  }
  [[nodiscard]] const char* wire_code() const { return to_wire(code); }
};

/// The result shape of every typed Client call.
template <typename T>
using SvcResult = common::Expected<T, SvcError>;

}  // namespace rim::svc
