#include "rim/svc/protocol.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace rim::svc {

std::string encode_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (std::size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    frame += static_cast<char>((length >> (8 * byte)) & 0xFFu);
  }
  frame.append(payload);
  return frame;
}

FrameStatus try_decode_frame(std::string_view buffer,
                             std::size_t max_frame_bytes, std::size_t& consumed,
                             std::string& payload) {
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  std::uint32_t length = 0;
  for (std::size_t byte = 0; byte < kFrameHeaderBytes; ++byte) {
    length |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(buffer[byte]))
              << (8 * byte);
  }
  if (length > max_frame_bytes) return FrameStatus::kTooLarge;
  if (buffer.size() < kFrameHeaderBytes + length) return FrameStatus::kNeedMore;
  payload.assign(buffer.substr(kFrameHeaderBytes, length));
  consumed = kFrameHeaderBytes + length;
  return FrameStatus::kFrame;
}

std::string make_ok(std::uint64_t id, io::Json result) {
  io::JsonObject response;
  response["id"] = io::Json(id);
  response["ok"] = io::Json(true);
  response["result"] = std::move(result);
  return io::Json(std::move(response)).dump();
}

std::string make_error(std::uint64_t id, const char* code,
                       const std::string& message) {
  io::JsonObject response;
  response["code"] = io::Json(code);
  response["error"] = io::Json(message);
  response["id"] = io::Json(id);
  response["ok"] = io::Json(false);
  return io::Json(std::move(response)).dump();
}

const char* mutation_kind_name(core::Mutation::Kind kind) {
  switch (kind) {
    case core::Mutation::Kind::kAddNode: return "add_node";
    case core::Mutation::Kind::kRemoveNode: return "remove_node";
    case core::Mutation::Kind::kAddEdge: return "add_edge";
    case core::Mutation::Kind::kRemoveEdge: return "remove_edge";
    case core::Mutation::Kind::kMoveNode: return "move_node";
  }
  return "unknown";
}

io::Json mutation_to_json(const core::Mutation& mutation) {
  io::JsonObject object;
  object["kind"] = io::Json(mutation_kind_name(mutation.kind));
  switch (mutation.kind) {
    case core::Mutation::Kind::kAddNode:
      object["x"] = io::Json(mutation.position.x);
      object["y"] = io::Json(mutation.position.y);
      break;
    case core::Mutation::Kind::kRemoveNode:
      object["v"] = io::Json(mutation.v);
      break;
    case core::Mutation::Kind::kAddEdge:
    case core::Mutation::Kind::kRemoveEdge:
      object["u"] = io::Json(mutation.u);
      object["v"] = io::Json(mutation.v);
      break;
    case core::Mutation::Kind::kMoveNode:
      object["v"] = io::Json(mutation.v);
      object["x"] = io::Json(mutation.position.x);
      object["y"] = io::Json(mutation.position.y);
      break;
  }
  return io::Json(std::move(object));
}

bool json_to_u64(const io::Json& json, std::uint64_t max, std::uint64_t& out) {
  if (!json.is_number()) return false;
  const double value = json.as_number();
  if (!(value >= 0.0) || value != std::floor(value)) return false;
  // Doubles are exact up to 2^53; every id space here (NodeId, session
  // ids) fits comfortably below that.
  if (value > 9007199254740992.0) return false;
  const auto integral = static_cast<std::uint64_t>(value);
  if (integral > max) return false;
  out = integral;
  return true;
}

namespace {

bool node_id_field(const io::Json& json, const char* key, NodeId& out,
                   std::string& error) {
  const io::Json* field = json.find(key);
  std::uint64_t value = 0;
  if (field == nullptr || !json_to_u64(*field, kInvalidNode, value)) {
    error = std::string("mutation field '") + key +
            "' must be an integer node id";
    return false;
  }
  out = static_cast<NodeId>(value);
  return true;
}

bool position_fields(const io::Json& json, geom::Vec2& out,
                     std::string& error) {
  const io::Json* x = json.find("x");
  const io::Json* y = json.find("y");
  if (x == nullptr || y == nullptr || !x->is_number() || !y->is_number()) {
    error = "mutation fields 'x'/'y' must be numbers";
    return false;
  }
  out = {x->as_number(), y->as_number()};
  return true;
}

}  // namespace

bool mutation_from_json(const io::Json& json, core::Mutation& out,
                        std::string& error) {
  if (!json.is_object()) {
    error = "mutation must be an object";
    return false;
  }
  const io::Json* kind = json.find("kind");
  const std::string* name = kind != nullptr ? kind->as_string() : nullptr;
  if (name == nullptr) {
    error = "mutation field 'kind' must be a string";
    return false;
  }
  geom::Vec2 position{};
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  if (*name == "add_node") {
    if (!position_fields(json, position, error)) return false;
    out = core::Mutation::add_node(position);
    return true;
  }
  if (*name == "remove_node") {
    if (!node_id_field(json, "v", v, error)) return false;
    out = core::Mutation::remove_node(v);
    return true;
  }
  if (*name == "add_edge" || *name == "remove_edge") {
    if (!node_id_field(json, "u", u, error)) return false;
    if (!node_id_field(json, "v", v, error)) return false;
    out = *name == "add_edge" ? core::Mutation::add_edge(u, v)
                              : core::Mutation::remove_edge(u, v);
    return true;
  }
  if (*name == "move_node") {
    if (!node_id_field(json, "v", v, error)) return false;
    if (!position_fields(json, position, error)) return false;
    out = core::Mutation::move_node(v, position);
    return true;
  }
  error = "unknown mutation kind '" + *name + "'";
  return false;
}

bool mutation_batch_from_json(const io::Json& json,
                              std::vector<core::Mutation>& out,
                              std::string& error) {
  const io::JsonArray* array = json.as_array();
  if (array == nullptr) {
    error = "batch must be an array of mutation objects";
    return false;
  }
  out.clear();
  out.reserve(array->size());
  for (std::size_t i = 0; i < array->size(); ++i) {
    core::Mutation mutation;
    if (!mutation_from_json((*array)[i], mutation, error)) {
      error = "batch[" + std::to_string(i) + "]: " + error;
      return false;
    }
    out.push_back(mutation);
  }
  return true;
}

std::uint64_t peek_request_id(std::string_view payload) {
  io::Json document;
  std::string error;
  if (!io::Json::parse(payload, document, error)) return 0;
  const io::Json* id = document.find("id");
  std::uint64_t value = 0;
  if (id == nullptr ||
      !json_to_u64(*id, std::numeric_limits<std::uint64_t>::max(), value)) {
    return 0;
  }
  return value;
}

}  // namespace rim::svc
