#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/obs/registry.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/svc/handler.hpp"
#include "rim/svc/protocol.hpp"
#include "rim/svc/replica_store.hpp"
#include "rim/svc/session.hpp"

/// \file service.hpp
/// The request-serving layer over core::Scenario (DESIGN.md §9).
///
/// Service::handle() maps one request payload (a deframed protocol.hpp
/// JSON document) onto the Scenario surface of the addressed session and
/// returns exactly one response payload. It is transport-agnostic and
/// thread-safe: LoopbackTransport calls it inline on the caller's thread,
/// TcpServer calls it from dispatch-pool workers — concurrently for
/// different connections.
///
/// **Admission control sheds, never queues.** Every request first claims
/// an in-flight ticket (a relaxed-atomic gauge). At `max_in_flight` the
/// claim fails and the caller answers code "overloaded" immediately —
/// transports check `try_admit()` *before* enqueueing work, so an
/// overloaded service's dispatch queue cannot grow without bound. The
/// same applies to `max_sessions` (SessionManager) and oversized frames
/// (transports answer "bad_frame" and drop the connection).
///
/// **Per-tenant fairness.** The in-flight gate alone is first-come-
/// first-served: a hog tenant can starve everyone behind it. With
/// `SvcLimits::tenant_rate_per_s` set, every session carries a
/// svc::TokenBucket and each session command spends one token — a tenant
/// over its rate is shed with the same "overloaded" envelope (counted in
/// `rejected_tenant` and the session's `rate_limited`) while other
/// tenants' buckets, and therefore their throughput, are unaffected.
///
/// **Threading.** Lock order is service-internal and strictly
/// manager → session (session.hpp); handlers hold exactly one session
/// mutex while touching its Scenario. Batches run on the service-owned
/// `batch_pool_`, which is distinct from any transport dispatch pool —
/// a handler executing *on* a dispatch-pool worker must not wait_idle()
/// on that same pool (the §8 contract sim::WorkloadDriver documents),
/// so the inner pipeline gets its own.
///
/// Every counter here is an obs primitive; `metrics` serves the service's
/// obs::Registry snapshot ("svc" plus one "svc.session.<id>" source per
/// session, all lock-free producers).

namespace rim::svc {

struct ServiceConfig {
  SvcLimits limits;
  /// EvalOptions for every session's Scenario.
  core::EvalOptions eval{};
  /// Workers for the batch pipeline pool (0 = hardware concurrency).
  std::size_t batch_pool_threads = 0;
  /// Accept "fault"/"recover" fields on apply_batch (test/chaos tooling;
  /// production services keep this off and answer "fault_disabled").
  bool enable_fault_injection = false;
  /// Accept the "shutdown" command (rim_cli serve turns this on so the
  /// CI smoke test can stop the server cleanly over the wire).
  bool allow_shutdown = false;
};

/// Global service counters (lock-free; the "svc" registry source).
struct ServiceCounters {
  obs::Counter requests;            ///< payloads handled (ok + error)
  obs::Counter ok;                  ///< answered ok=true
  obs::Counter errors;              ///< answered ok=false (any code)
  obs::Counter rejected_overloaded; ///< shed by the global in-flight gate
  obs::Counter rejected_tenant;     ///< shed by a per-tenant token bucket
  obs::Counter rejected_bad_frame;  ///< unparseable payloads
  obs::Counter handle_ns;           ///< total time inside handle paths
  obs::Histogram latency_ns;        ///< per-request handling latency

  [[nodiscard]] io::Json to_json() const;
};

class Service final : public RequestHandler {
 public:
  explicit Service(ServiceConfig config);
  ~Service() override;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// The admission slot type (handler.hpp; the name predates the
  /// RequestHandler split and is kept for existing callers).
  using Ticket = RequestHandler::Ticket;

  /// Claim an in-flight slot; falsy at max_in_flight. Transports call
  /// this *before* enqueueing dispatch work so excess load is shed at
  /// the door, not parked in a queue.
  [[nodiscard]] Ticket try_admit() override;

  /// Dispatch a payload whose admission ticket the caller already holds.
  [[nodiscard]] std::string handle_admitted(std::string_view payload) override;

  /// The "overloaded" response for \p payload (echoes its id when it
  /// parses). Also counts the rejection.
  [[nodiscard]] std::string overloaded_response(
      std::string_view payload) override;

  [[nodiscard]] std::size_t max_frame_bytes() const override {
    return config_.limits.max_frame_bytes;
  }

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] SessionManager& sessions() { return sessions_; }
  [[nodiscard]] ReplicaStore& replicas() { return replicas_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const ServiceCounters& counters() const { return counters_; }

  /// True once a "shutdown" command was accepted.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Block until shutdown_requested() (rim_cli serve's main loop).
  void wait_shutdown() RIM_EXCLUDES(shutdown_mutex_);

  /// Trip the shutdown flag locally (tests; signal handlers).
  void request_shutdown() RIM_EXCLUDES(shutdown_mutex_);

 protected:
  void release_admission() override {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::string dispatch(std::string_view payload);
  [[nodiscard]] std::string dispatch_command(std::uint64_t id,
                                             const std::string& command,
                                             const io::Json& request);
  /// Commands addressing one session: checkout, run, checkin.
  [[nodiscard]] std::string dispatch_session_command(
      std::uint64_t id, const std::string& command, const io::Json& request);
  /// Shard replication commands (replicate_session/adopt_session/
  /// drop_replica — protocol.hpp, DESIGN.md §14).
  [[nodiscard]] std::string dispatch_replica_command(
      std::uint64_t id, const std::string& command, const io::Json& request);

  ServiceConfig config_;
  SessionManager sessions_;
  ReplicaStore replicas_;
  parallel::ThreadPool batch_pool_;
  obs::Registry registry_;
  ServiceCounters counters_;

  std::atomic<std::size_t> in_flight_{0};

  std::atomic<bool> shutdown_{false};
  common::Mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
};

}  // namespace rim::svc
