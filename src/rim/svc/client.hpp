#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/svc/errors.hpp"
#include "rim/svc/transport.hpp"

/// \file client.hpp
/// Typed client for the scenario service.
///
/// Client wraps any Transport (loopback or TCP) and speaks the protocol.hpp
/// wire format: it assigns monotonically increasing request ids, frames the
/// request, and unwraps the response envelope.
///
/// The API is the try_* family: every call returns SvcResult<T>
/// (= common::Expected<T, SvcError>), whose SvcErrorCode mirrors the wire
/// envelope codes (errors.hpp) — a lost peer (reset/EOF/deadline during
/// the exchange) is SvcErrorCode::kConnectionLost, any other transport
/// failure is SvcErrorCode::kTransport, and a service error response
/// carries the decoded wire code and message. The most recent failure is
/// additionally retained in error() / error_code() for diagnostics.
///
/// The raw response payload of the most recent call is retained
/// (last_response_payload()); the byte-identity tests compare it against
/// expected wire bytes built directly from Scenario results.

namespace rim::svc {

class Client {
 public:
  explicit Client(Transport& transport) : transport_(transport) {}

  // --- typed API ------------------------------------------------------

  /// Generic command call: sends {"cmd":command,"id":<auto>, ...params}
  /// and yields the response's "result" document.
  [[nodiscard]] SvcResult<io::Json> try_call(const std::string& command,
                                             io::JsonObject params);

  [[nodiscard]] SvcResult<void> try_ping();
  /// Yields the new session id.
  [[nodiscard]] SvcResult<std::uint64_t> try_create_session();
  [[nodiscard]] SvcResult<void> try_close_session(std::uint64_t session);

  /// Yields the new node's id.
  [[nodiscard]] SvcResult<NodeId> try_add_node(std::uint64_t session,
                                               double x, double y);
  /// Yields the id the last node was renamed to, or kInvalidNode when no
  /// rename happened.
  [[nodiscard]] SvcResult<NodeId> try_remove_node(std::uint64_t session,
                                                  NodeId v);
  /// Yields whether the edge was actually added (false: already present).
  [[nodiscard]] SvcResult<bool> try_add_edge(std::uint64_t session, NodeId u,
                                             NodeId v);
  /// Yields whether the edge was actually removed (false: not present).
  [[nodiscard]] SvcResult<bool> try_remove_edge(std::uint64_t session,
                                                NodeId u, NodeId v);
  [[nodiscard]] SvcResult<void> try_move_node(std::uint64_t session, NodeId v,
                                              double x, double y);

  [[nodiscard]] SvcResult<core::BatchResult> try_apply_batch(
      std::uint64_t session, std::span<const core::Mutation> batch);
  /// Yields the raw assessment document (affected_ids, delta_per_node,
  /// max_before, max_after, newcomer_interference).
  [[nodiscard]] SvcResult<io::Json> try_assess(
      std::uint64_t session, std::span<const core::Mutation> mutations);

  /// Whole-session interference ({"max","per_node","total"}).
  [[nodiscard]] SvcResult<io::Json> try_query_interference(
      std::uint64_t session);
  [[nodiscard]] SvcResult<std::uint32_t> try_query_interference_of(
      std::uint64_t session, NodeId v);

  [[nodiscard]] SvcResult<io::Json> try_snapshot(std::uint64_t session);
  [[nodiscard]] SvcResult<void> try_restore(std::uint64_t session,
                                            const io::Json& snapshot_doc);
  [[nodiscard]] SvcResult<io::Json> try_session_stats(std::uint64_t session);

  [[nodiscard]] SvcResult<io::Json> try_metrics();
  [[nodiscard]] SvcResult<void> try_shutdown();

  // --- diagnostics -----------------------------------------------------

  /// Message of the most recent failure.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Wire error code of the most recent failure ("transport" when the
  /// failure was below the protocol).
  [[nodiscard]] const std::string& error_code() const { return error_code_; }
  /// The raw (deframed) response payload of the most recent exchange.
  [[nodiscard]] const std::string& last_response_payload() const {
    return last_response_payload_;
  }
  [[nodiscard]] std::uint64_t last_request_id() const { return last_id_; }

 private:
  /// Records \p error into error()/error_code() and forwards it.
  [[nodiscard]] common::Unexpected<SvcError> fail(SvcError error);
  [[nodiscard]] common::Unexpected<SvcError> transport_failure(
      std::string message);

  Transport& transport_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_id_ = 0;
  std::string error_;
  std::string error_code_;
  std::string last_response_payload_;
};

}  // namespace rim::svc
