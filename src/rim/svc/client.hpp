#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/svc/transport.hpp"

/// \file client.hpp
/// Typed client for the scenario service.
///
/// Client wraps any Transport (loopback or TCP) and speaks the protocol.hpp
/// wire format: it assigns monotonically increasing request ids, frames the
/// request, and unwraps the response envelope. Every typed call returns
/// false on failure — either a transport error (error_code() == "transport")
/// or a service error response (error_code() is the wire code, error() the
/// message).
///
/// The raw response payload of the most recent call is retained
/// (last_response_payload()); the byte-identity tests compare it against
/// expected wire bytes built directly from Scenario results.

namespace rim::svc {

class Client {
 public:
  explicit Client(Transport& transport) : transport_(transport) {}

  /// Generic command call: sends {"cmd":command,"id":<auto>, ...params}
  /// and yields the response's "result" document.
  [[nodiscard]] bool call(const std::string& command, io::JsonObject params,
                          io::Json& result);

  [[nodiscard]] bool ping();
  [[nodiscard]] bool create_session(std::uint64_t& session);
  [[nodiscard]] bool close_session(std::uint64_t session);

  [[nodiscard]] bool add_node(std::uint64_t session, double x, double y,
                              NodeId& node);
  /// \p renamed receives the id the last node was renamed to, or
  /// kInvalidNode when no rename happened.
  [[nodiscard]] bool remove_node(std::uint64_t session, NodeId v,
                                 NodeId& renamed);
  [[nodiscard]] bool add_edge(std::uint64_t session, NodeId u, NodeId v,
                              bool& added);
  [[nodiscard]] bool remove_edge(std::uint64_t session, NodeId u, NodeId v,
                                 bool& removed);
  [[nodiscard]] bool move_node(std::uint64_t session, NodeId v, double x,
                               double y);

  [[nodiscard]] bool apply_batch(std::uint64_t session,
                                 std::span<const core::Mutation> batch,
                                 core::BatchResult& result);
  /// Yields the raw assessment document (affected_ids, delta_per_node,
  /// max_before, max_after, newcomer_interference).
  [[nodiscard]] bool assess(std::uint64_t session,
                            std::span<const core::Mutation> mutations,
                            io::Json& assessment);

  /// Whole-session interference ({"max","per_node","total"}).
  [[nodiscard]] bool query_interference(std::uint64_t session,
                                        io::Json& result);
  [[nodiscard]] bool query_interference_of(std::uint64_t session, NodeId v,
                                           std::uint32_t& value);

  [[nodiscard]] bool snapshot(std::uint64_t session, io::Json& snapshot_doc);
  [[nodiscard]] bool restore(std::uint64_t session,
                             const io::Json& snapshot_doc);
  [[nodiscard]] bool session_stats(std::uint64_t session, io::Json& stats);

  [[nodiscard]] bool metrics(io::Json& snapshot);
  [[nodiscard]] bool shutdown();

  /// Message of the most recent failure.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Wire error code of the most recent failure ("transport" when the
  /// failure was below the protocol).
  [[nodiscard]] const std::string& error_code() const { return error_code_; }
  /// The raw (deframed) response payload of the most recent exchange.
  [[nodiscard]] const std::string& last_response_payload() const {
    return last_response_payload_;
  }
  [[nodiscard]] std::uint64_t last_request_id() const { return last_id_; }

 private:
  [[nodiscard]] bool transport_failure(std::string message);

  Transport& transport_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_id_ = 0;
  std::string error_;
  std::string error_code_;
  std::string last_response_payload_;
};

}  // namespace rim::svc
