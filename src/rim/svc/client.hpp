#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/svc/errors.hpp"
#include "rim/svc/transport.hpp"

/// \file client.hpp
/// Typed client for the scenario service.
///
/// Client wraps any Transport (loopback or TCP) and speaks the protocol.hpp
/// wire format: it assigns monotonically increasing request ids, frames the
/// request, and unwraps the response envelope.
///
/// The primary API is the try_* family: every call returns
/// SvcResult<T> (= common::Expected<T, SvcError>), whose SvcErrorCode
/// mirrors the wire envelope codes (errors.hpp) — a transport failure is
/// SvcErrorCode::kTransport, a service error response carries the decoded
/// wire code and message. The bool-returning legacy calls are thin
/// wrappers kept for one PR (DESIGN.md §10): they return false on failure
/// and leave the message in error() / the wire code string in
/// error_code().
///
/// The raw response payload of the most recent call is retained
/// (last_response_payload()); the byte-identity tests compare it against
/// expected wire bytes built directly from Scenario results.

namespace rim::svc {

class Client {
 public:
  explicit Client(Transport& transport) : transport_(transport) {}

  // --- typed API ------------------------------------------------------

  /// Generic command call: sends {"cmd":command,"id":<auto>, ...params}
  /// and yields the response's "result" document.
  [[nodiscard]] SvcResult<io::Json> try_call(const std::string& command,
                                             io::JsonObject params);

  [[nodiscard]] SvcResult<void> try_ping();
  /// Yields the new session id.
  [[nodiscard]] SvcResult<std::uint64_t> try_create_session();
  [[nodiscard]] SvcResult<void> try_close_session(std::uint64_t session);

  /// Yields the new node's id.
  [[nodiscard]] SvcResult<NodeId> try_add_node(std::uint64_t session,
                                               double x, double y);
  /// Yields the id the last node was renamed to, or kInvalidNode when no
  /// rename happened.
  [[nodiscard]] SvcResult<NodeId> try_remove_node(std::uint64_t session,
                                                  NodeId v);
  /// Yields whether the edge was actually added (false: already present).
  [[nodiscard]] SvcResult<bool> try_add_edge(std::uint64_t session, NodeId u,
                                             NodeId v);
  /// Yields whether the edge was actually removed (false: not present).
  [[nodiscard]] SvcResult<bool> try_remove_edge(std::uint64_t session,
                                                NodeId u, NodeId v);
  [[nodiscard]] SvcResult<void> try_move_node(std::uint64_t session, NodeId v,
                                              double x, double y);

  [[nodiscard]] SvcResult<core::BatchResult> try_apply_batch(
      std::uint64_t session, std::span<const core::Mutation> batch);
  /// Yields the raw assessment document (affected_ids, delta_per_node,
  /// max_before, max_after, newcomer_interference).
  [[nodiscard]] SvcResult<io::Json> try_assess(
      std::uint64_t session, std::span<const core::Mutation> mutations);

  /// Whole-session interference ({"max","per_node","total"}).
  [[nodiscard]] SvcResult<io::Json> try_query_interference(
      std::uint64_t session);
  [[nodiscard]] SvcResult<std::uint32_t> try_query_interference_of(
      std::uint64_t session, NodeId v);

  [[nodiscard]] SvcResult<io::Json> try_snapshot(std::uint64_t session);
  [[nodiscard]] SvcResult<void> try_restore(std::uint64_t session,
                                            const io::Json& snapshot_doc);
  [[nodiscard]] SvcResult<io::Json> try_session_stats(std::uint64_t session);

  [[nodiscard]] SvcResult<io::Json> try_metrics();
  [[nodiscard]] SvcResult<void> try_shutdown();

  // --- deprecated bool wrappers (kept for one PR; DESIGN.md §10) -------
  // Same semantics as the typed calls; on failure they return false and
  // stash the SvcError into error()/error_code().

  [[nodiscard]] bool call(const std::string& command, io::JsonObject params,
                          io::Json& result);

  [[nodiscard]] bool ping();
  [[nodiscard]] bool create_session(std::uint64_t& session);
  [[nodiscard]] bool close_session(std::uint64_t session);

  [[nodiscard]] bool add_node(std::uint64_t session, double x, double y,
                              NodeId& node);
  [[nodiscard]] bool remove_node(std::uint64_t session, NodeId v,
                                 NodeId& renamed);
  [[nodiscard]] bool add_edge(std::uint64_t session, NodeId u, NodeId v,
                              bool& added);
  [[nodiscard]] bool remove_edge(std::uint64_t session, NodeId u, NodeId v,
                                 bool& removed);
  [[nodiscard]] bool move_node(std::uint64_t session, NodeId v, double x,
                               double y);

  [[nodiscard]] bool apply_batch(std::uint64_t session,
                                 std::span<const core::Mutation> batch,
                                 core::BatchResult& result);
  [[nodiscard]] bool assess(std::uint64_t session,
                            std::span<const core::Mutation> mutations,
                            io::Json& assessment);

  [[nodiscard]] bool query_interference(std::uint64_t session,
                                        io::Json& result);
  [[nodiscard]] bool query_interference_of(std::uint64_t session, NodeId v,
                                           std::uint32_t& value);

  [[nodiscard]] bool snapshot(std::uint64_t session, io::Json& snapshot_doc);
  [[nodiscard]] bool restore(std::uint64_t session,
                             const io::Json& snapshot_doc);
  [[nodiscard]] bool session_stats(std::uint64_t session, io::Json& stats);

  [[nodiscard]] bool metrics(io::Json& snapshot);
  [[nodiscard]] bool shutdown();

  // --- diagnostics -----------------------------------------------------

  /// Message of the most recent failure.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Wire error code of the most recent failure ("transport" when the
  /// failure was below the protocol).
  [[nodiscard]] const std::string& error_code() const { return error_code_; }
  /// The raw (deframed) response payload of the most recent exchange.
  [[nodiscard]] const std::string& last_response_payload() const {
    return last_response_payload_;
  }
  [[nodiscard]] std::uint64_t last_request_id() const { return last_id_; }

 private:
  /// Records \p error into error()/error_code() and forwards it.
  [[nodiscard]] common::Unexpected<SvcError> fail(SvcError error);
  [[nodiscard]] common::Unexpected<SvcError> transport_failure(
      std::string message);

  /// Unwraps a typed result into the bool-wrapper calling convention.
  template <typename T>
  bool unwrap(SvcResult<T> result, T& out) {
    if (!result.has_value()) return false;
    out = std::move(result).value();
    return true;
  }
  bool unwrap(const SvcResult<void>& result) { return result.has_value(); }

  Transport& transport_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_id_ = 0;
  std::string error_;
  std::string error_code_;
  std::string last_response_payload_;
};

}  // namespace rim::svc
