#include "rim/svc/tcp.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rim::svc {

namespace {

/// Write the whole buffer, riding out partial sends and EINTR. False when
/// the peer is gone (callers treat that as a dropped connection, not an
/// error — the protocol has no delivery guarantee past the socket).
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(RequestHandler& handler, TcpServerConfig config)
    : handler_(handler),
      config_(config),
      dispatch_pool_(config.dispatch_threads) {}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::start(std::string& error) {
  if (started_.exchange(true)) {
    error = "server already started";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    started_.store(false);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    error = std::string("bind/listen on port ") +
            std::to_string(config_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    started_.store(false);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    error = std::string("getsockname: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    started_.store(false);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TcpServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;
  // 1. Stop accepting: unblock and join the accept thread.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Flush responses already dispatched, then unblock every reader.
  dispatch_pool_.wait_idle();
  {
    common::MutexLock lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& conn : connections_) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }
  // 3. Readers may have dispatched more work before seeing the shutdown;
  // drain it, after which nothing references the connections.
  dispatch_pool_.wait_idle();
  {
    common::MutexLock lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    connections_.clear();
  }
}

void TcpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto conn = std::make_unique<Connection>(fd);
    Connection& ref = *conn;
    {
      common::MutexLock lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    reap_connections();
  }
}

void TcpServer::reader_loop(Connection& conn) {
  std::string buffer;
  std::string chunk(std::size_t{1} << 16, '\0');
  const std::size_t max_frame = handler_.max_frame_bytes();
  bool drop = false;
  while (!drop) {
    const ssize_t n = ::recv(conn.fd, chunk.data(), chunk.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk.data(), static_cast<std::size_t>(n));
    while (!drop) {
      std::size_t consumed = 0;
      std::string payload;
      const FrameStatus status =
          try_decode_frame(buffer, max_frame, consumed, payload);
      if (status == FrameStatus::kNeedMore) break;
      if (status == FrameStatus::kTooLarge) {
        // The stream offset is unrecoverable past an oversized header:
        // answer once, then drop the connection.
        send_response(conn,
                      make_error(0, code::kBadFrame,
                                 "frame exceeds max_frame_bytes (" +
                                     std::to_string(max_frame) + ")"));
        drop = true;
        break;
      }
      buffer.erase(0, consumed);
      // Shed-not-queue: claim the admission slot *before* enqueueing. A
      // refusal is answered inline from this reader; the dispatch queue
      // only ever holds admitted work.
      RequestHandler::Ticket ticket = handler_.try_admit();
      if (!ticket) {
        send_response(conn, handler_.overloaded_response(payload));
        continue;
      }
      // ThreadPool tasks are copyable std::functions; the move-only
      // ticket rides in a shared_ptr.
      auto ticket_ptr =
          std::make_shared<RequestHandler::Ticket>(std::move(ticket));
      conn.pending.fetch_add(1, std::memory_order_acq_rel);
      dispatch_pool_.submit([this, &conn, payload, ticket_ptr] {
        send_response(conn, handler_.handle_admitted(payload));
        ticket_ptr->release();
        // Last touch of conn: reap_connections() frees it only once
        // done && pending == 0.
        conn.pending.fetch_sub(1, std::memory_order_acq_rel);
      });
    }
  }
  // The connection is dead (EOF or protocol drop) but its descriptor is
  // only closed by reap/stop, which may be far off. Send FIN now so a
  // peer blocked in recv() observes the drop instead of hanging; any
  // still-dispatched response just gets EPIPE, which send_all tolerates.
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.done.store(true, std::memory_order_release);
}

void TcpServer::send_response(Connection& conn, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  common::MutexLock lock(conn.write_mutex);
  (void)send_all(conn.fd, frame.data(), frame.size());
}

void TcpServer::reap_connections() {
  common::MutexLock lock(connections_mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    Connection& conn = **it;
    if (conn.done.load(std::memory_order_acquire) &&
        conn.pending.load(std::memory_order_acquire) == 0) {
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.fd >= 0) ::close(conn.fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

TcpClientTransport::~TcpClientTransport() { disconnect(); }

bool TcpClientTransport::connected() const {
  common::MutexLock lock(io_mutex_);
  return fd_ >= 0;
}

void TcpClientTransport::disconnect() {
  common::MutexLock lock(io_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpClientTransport::connect_to(const std::string& host,
                                    std::uint16_t port, std::string& error) {
  common::MutexLock lock(io_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &results);
  if (rc != 0) {
    error = std::string("getaddrinfo(") + host + "): " + ::gai_strerror(rc);
    return false;
  }
  int fd = -1;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    error = "connect to " + host + ":" + port_str + " failed: " +
            std::strerror(errno);
    return false;
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  if (exchange_deadline_ms > 0) {
    timeval deadline{};
    deadline.tv_sec = exchange_deadline_ms / 1000;
    deadline.tv_usec =
        static_cast<suseconds_t>((exchange_deadline_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline, sizeof(deadline));
  }
  fd_ = fd;
  return true;
}

TransportStatus TcpClientTransport::roundtrip(std::string_view frame,
                                              std::string& response_frame,
                                              std::string& error) {
  common::MutexLock lock(io_mutex_);
  if (fd_ < 0) {
    error = "not connected";
    return TransportStatus::kConnectionLost;
  }
  if (!send_all(fd_, frame.data(), frame.size())) {
    error = std::string("send: ") + std::strerror(errno);
    // A failed send is a vanished peer (EPIPE/ECONNRESET) or a blown
    // SO_SNDTIMEO deadline — either way the connection is unusable.
    ::close(fd_);
    fd_ = -1;
    return TransportStatus::kConnectionLost;
  }
  std::string buffer;
  std::string chunk(std::size_t{1} << 16, '\0');
  while (true) {
    std::size_t consumed = 0;
    std::string payload;
    const FrameStatus status =
        try_decode_frame(buffer, max_response_frame_bytes, consumed, payload);
    if (status == FrameStatus::kFrame) {
      response_frame = buffer.substr(0, consumed);
      return TransportStatus::kOk;
    }
    if (status == FrameStatus::kTooLarge) {
      error = "response frame exceeds max_response_frame_bytes (" +
              std::to_string(max_response_frame_bytes) + ")";
      return TransportStatus::kError;
    }
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // EOF with a request in flight: the peer died mid-exchange. This is
      // the torn-read case the shard router keys failover on — it must
      // not be conflated with a decode error.
      error = "connection closed by server";
      ::close(fd_);
      fd_ = -1;
      return TransportStatus::kConnectionLost;
    }
    if (n < 0) {
      const bool deadline = errno == EAGAIN || errno == EWOULDBLOCK;
      const bool reset = errno == ECONNRESET || errno == ETIMEDOUT;
      error = std::string("recv: ") + std::strerror(errno);
      if (deadline || reset) {
        ::close(fd_);
        fd_ = -1;
        return TransportStatus::kConnectionLost;
      }
      return TransportStatus::kError;
    }
    buffer.append(chunk.data(), static_cast<std::size_t>(n));
  }
}

}  // namespace rim::svc
