#pragma once

#include <cstdint>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

/// \file token_bucket.hpp
/// Per-tenant fair admission for the scenario service (DESIGN.md §10).
///
/// The global in-flight gate (Service::try_admit) protects the process from
/// aggregate overload but is first-come-first-served: one hog tenant
/// hammering the service starves everyone behind the same gate. Each
/// session therefore carries its own TokenBucket — tokens refill at a
/// configured steady rate up to a burst cap, and every session command
/// spends one. A tenant that exceeds its rate is shed with the same
/// explicit "overloaded" envelope as the global gate (sheds, never queues),
/// while well-behaved tenants keep their full rate.
///
/// Time is injected by the caller (obs::now_ns() in production), so tests
/// drive the bucket with a synthetic clock and stay deterministic.

namespace rim::svc {

class TokenBucket {
 public:
  /// \p rate_per_s tokens accrue per second up to \p burst; a
  /// non-positive rate disables the bucket (try_acquire always succeeds).
  /// The bucket starts full, so a tenant's first `burst` commands are
  /// never shed.
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_) {}

  [[nodiscard]] bool enabled() const { return rate_per_s_ > 0.0; }

  /// Refill from the elapsed time since the last call, then try to spend
  /// one token. \p now_ns must come from a monotonic clock; a stale
  /// timestamp (time moving backwards across threads) refills nothing
  /// rather than faulting.
  [[nodiscard]] bool try_acquire(std::uint64_t now_ns) RIM_EXCLUDES(mutex_) {
    if (!enabled()) return true;
    common::MutexLock lock(mutex_);
    refill_locked(now_ns);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Current token count after refilling to \p now_ns (metrics/tests).
  [[nodiscard]] double tokens(std::uint64_t now_ns) RIM_EXCLUDES(mutex_) {
    if (!enabled()) return burst_;
    common::MutexLock lock(mutex_);
    refill_locked(now_ns);
    return tokens_;
  }

  [[nodiscard]] double rate_per_s() const { return rate_per_s_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  void refill_locked(std::uint64_t now_ns) RIM_REQUIRES(mutex_) {
    if (last_ns_ == 0 || now_ns <= last_ns_) {
      // First observation (or a cross-thread stale clock read): anchor the
      // refill window without accruing.
      if (last_ns_ == 0) last_ns_ = now_ns;
      return;
    }
    const double elapsed_s =
        static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ += elapsed_s * rate_per_s_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ns_ = now_ns;
  }

  const double rate_per_s_;
  const double burst_;

  common::Mutex mutex_;
  double tokens_ RIM_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t last_ns_ RIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace rim::svc
