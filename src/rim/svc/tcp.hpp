#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/svc/transport.hpp"

/// \file tcp.hpp
/// POSIX TCP transport for the scenario service.
///
/// TcpServer binds a loopback listener and runs one accept thread plus one
/// reader thread per connection. Readers deframe requests and claim an
/// admission ticket *before* submitting the dispatch onto the server's
/// thread pool; refused requests are answered "overloaded" inline from the
/// reader, so a saturated service never grows a dispatch backlog
/// (shed-not-queue, service.hpp). An oversized frame gets a "bad_frame"
/// response and the connection is dropped — the stream offset is
/// unrecoverable past a corrupt header.
///
/// The server speaks to any RequestHandler (handler.hpp): a svc::Service
/// backend or a shard::Router front tier — the wire protocol is identical
/// either way.
///
/// Responses may be written from dispatch workers concurrently with the
/// reader answering sheds, so each connection serializes writes with its
/// own mutex. Dispatch runs on the server's pool; batch execution inside a
/// handler runs on the Service's distinct batch pool (service.hpp), so a
/// dispatch worker never wait_idle()s on its own pool.
///
/// stop() is idempotent and clean: stop accepting, drain dispatched work,
/// shut down every connection, join every thread. TcpServer's destructor
/// calls it.

namespace rim::svc {

struct TcpServerConfig {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Dispatch pool workers (0 = hardware concurrency).
  std::size_t dispatch_threads = 0;
};

class TcpServer {
 public:
  TcpServer(RequestHandler& handler, TcpServerConfig config);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + start the accept thread. False with \p error on
  /// socket failure (e.g. port in use).
  [[nodiscard]] bool start(std::string& error);

  /// The bound port (resolves an ephemeral request after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting, flush in-flight responses, close every connection,
  /// join every thread. Safe to call twice.
  void stop();

 private:
  struct Connection {
    explicit Connection(int socket_fd) : fd(socket_fd) {}
    /// Set once at accept time, before the reader thread exists; const-ness
    /// is what makes the cross-thread reads (reader, dispatch workers,
    /// stop()) race-free without a lock.
    const int fd;
    std::thread reader;
    common::Mutex write_mutex;
    std::atomic<bool> done{false};      ///< reader thread has exited
    std::atomic<std::size_t> pending{0};///< dispatched-but-unanswered requests
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  /// Frame + send one response on \p conn (serialized per connection).
  void send_response(Connection& conn, const std::string& payload);
  /// Join and drop connections whose readers have exited.
  void reap_connections() RIM_EXCLUDES(connections_mutex_);

  RequestHandler& handler_;
  const TcpServerConfig config_;
  parallel::ThreadPool dispatch_pool_;

  /// Written by start(), read by the accept thread and by stop() (which
  /// shuts the socket down from another thread to unblock ::accept), so
  /// both are atomic rather than lock-protected.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> port_{0};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  common::Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      RIM_GUARDED_BY(connections_mutex_);
};

/// Client side: one blocking socket, one request/response exchange at a
/// time (roundtrip() is internally serialized so a shared client is safe,
/// but pipelining is intentionally not offered — the protocol is strictly
/// request/response per frame).
class TcpClientTransport final : public Transport {
 public:
  TcpClientTransport() = default;
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  /// Connect to \p host:\p port (numeric IPv4 or a resolvable name).
  /// Applies exchange_deadline_ms to the socket when set.
  [[nodiscard]] bool connect_to(const std::string& host, std::uint16_t port,
                                std::string& error);

  [[nodiscard]] bool connected() const RIM_EXCLUDES(io_mutex_);
  void disconnect() RIM_EXCLUDES(io_mutex_);

  /// One exchange. kConnectionLost covers every "the peer is gone" shape:
  /// not connected, send/recv reset, EOF mid-frame, and a blown
  /// exchange_deadline_ms (an unresponsive backend is indistinguishable
  /// from a dead one to the caller's failover logic).
  [[nodiscard]] TransportStatus roundtrip(std::string_view frame,
                                          std::string& response_frame,
                                          std::string& error) override;

  /// Response payload frames larger than this are treated as a transport
  /// error (default matches the server-side frame cap).
  // RIM_LINT_ALLOW(project-annotation-coverage): pre-connection
  // configuration knob — set before the client is shared, constant during
  // exchanges (the documented request/response-per-frame contract).
  std::size_t max_response_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-exchange socket deadline in milliseconds (SO_RCVTIMEO/SO_SNDTIMEO,
  /// applied at connect time); 0 blocks forever. The shard router's health
  /// pings set this so a wedged backend is detected, not waited on.
  // RIM_LINT_ALLOW(project-annotation-coverage): pre-connection
  // configuration knob — set before connect_to(), constant afterwards.
  std::uint32_t exchange_deadline_ms = 0;

 private:
  mutable common::Mutex io_mutex_;
  int fd_ RIM_GUARDED_BY(io_mutex_) = -1;
};

}  // namespace rim::svc
