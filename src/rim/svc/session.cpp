#include "rim/svc/session.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "rim/core/snapshot.hpp"

namespace rim::svc {

io::Json SessionCounters::to_json() const {
  io::JsonObject object;
  object["requests"] = requests.to_json();
  object["errors"] = errors.to_json();
  object["mutations"] = mutations.to_json();
  object["spills"] = spills.to_json();
  object["spill_restores"] = spill_restores.to_json();
  object["rate_limited"] = rate_limited.to_json();
  object["handle_ns"] = handle_ns.to_json();
  object["latency_ns"] = latency_ns.to_json();
  return io::Json(std::move(object));
}

io::Json SessionManagerCounters::to_json() const {
  io::JsonObject object;
  object["created"] = created.to_json();
  object["closed"] = closed.to_json();
  object["evictions"] = evictions.to_json();
  object["spill_restores"] = spill_restores.to_json();
  object["spill_failures"] = spill_failures.to_json();
  return io::Json(std::move(object));
}

SessionManager::SessionManager(SvcLimits limits, core::EvalOptions eval)
    : limits_(std::move(limits)), eval_(eval) {}

SessionManager::~SessionManager() {
  common::MutexLock lock(mutex_);
  for (const auto& [id, entry] : sessions_) {
    if (entry.spilled) std::remove(spill_path(id).c_str());
  }
}

std::string SessionManager::spill_path(std::uint64_t id) const {
  return limits_.spill_dir + "/rim_svc_session_" + std::to_string(id) +
         ".snap";
}

std::size_t SessionManager::live_count_locked() const {
  std::size_t live = 0;
  for (const auto& [id, entry] : sessions_) {
    if (!entry.spilled) ++live;
  }
  return live;
}

bool SessionManager::spill_locked(std::uint64_t id, Entry& entry) {
  core::Snapshot snapshot;
  {
    Session& session = *entry.session;
    common::MutexLock session_lock(session.mutex);
    snapshot = session.scenario.snapshot();
  }
  const std::vector<std::uint8_t> bytes = snapshot.to_bytes();
  std::ofstream file(spill_path(id), std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    std::remove(spill_path(id).c_str());
    return false;
  }
  // Release the engine's memory; the spill file is now the state of record.
  Session& session = *entry.session;
  common::MutexLock session_lock(session.mutex);
  session.scenario = core::Scenario();
  return true;
}

bool SessionManager::unspill_locked(std::uint64_t id, Entry& entry,
                                    std::string& error) {
  std::ifstream file(spill_path(id), std::ios::binary);
  if (!file) {
    error = "cannot open spill file for session " + std::to_string(id);
    return false;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  core::Snapshot snapshot;
  if (!core::Snapshot::from_bytes(bytes, snapshot, error)) return false;
  Session& session = *entry.session;
  common::MutexLock session_lock(session.mutex);
  if (!session.scenario.restore(snapshot, &error)) return false;
  return true;
}

bool SessionManager::evict_lru_locked() {
  const Entry* victim = nullptr;
  std::uint64_t victim_id = 0;
  for (auto& [id, entry] : sessions_) {
    if (entry.spilled || entry.busy != 0) continue;
    if (victim == nullptr || entry.last_used < victim->last_used) {
      victim = &entry;
      victim_id = id;
    }
  }
  if (victim == nullptr) return false;
  Entry& entry = sessions_.at(victim_id);
  if (!spill_locked(victim_id, entry)) {
    ++counters_.spill_failures;
    return false;
  }
  entry.spilled = true;
  ++entry.session->counters.spills;
  ++counters_.evictions;
  return true;
}

bool SessionManager::create(std::uint64_t& id,
                            std::shared_ptr<Session>& session,
                            const char*& error_code, std::string& error) {
  common::MutexLock lock(mutex_);
  if (sessions_.size() >= limits_.max_sessions) {
    error_code = code::kOverloaded;
    error = "session limit reached (" + std::to_string(limits_.max_sessions) +
            "); close a session or retry later";
    return false;
  }
  const bool spill_enabled = !limits_.spill_dir.empty();
  while (live_count_locked() >= limits_.max_live_sessions) {
    if (!spill_enabled || !evict_lru_locked()) break;
  }
  if (!spill_enabled && live_count_locked() >= limits_.max_live_sessions) {
    error_code = code::kOverloaded;
    error = "live session limit reached (" +
            std::to_string(limits_.max_live_sessions) +
            ") and spilling is disabled";
    return false;
  }
  id = next_id_++;
  Entry entry;
  entry.session = std::make_shared<Session>(id, eval_, limits_);
  entry.last_used = ++lru_tick_;
  session = entry.session;
  sessions_.emplace(id, std::move(entry));
  ++counters_.created;
  return true;
}

bool SessionManager::close(std::uint64_t id, const char*& error_code,
                           std::string& error) {
  common::MutexLock lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    error_code = code::kNoSession;
    error = "no session " + std::to_string(id);
    return false;
  }
  if (it->second.spilled) std::remove(spill_path(id).c_str());
  sessions_.erase(it);
  ++counters_.closed;
  return true;
}

std::shared_ptr<Session> SessionManager::checkout(std::uint64_t id,
                                                  const char*& error_code,
                                                  std::string& error) {
  common::MutexLock lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    error_code = code::kNoSession;
    error = "no session " + std::to_string(id);
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.spilled) {
    while (live_count_locked() >= limits_.max_live_sessions) {
      if (!evict_lru_locked()) break;  // proceed over-cap rather than fail
    }
    if (!unspill_locked(id, entry, error)) {
      ++counters_.spill_failures;
      error_code = code::kInternal;
      error = "session " + std::to_string(id) +
              " could not be restored from spill: " + error;
      return nullptr;
    }
    entry.spilled = false;
    std::remove(spill_path(id).c_str());
    ++entry.session->counters.spill_restores;
    ++counters_.spill_restores;
  }
  entry.busy += 1;
  entry.last_used = ++lru_tick_;
  return entry.session;
}

void SessionManager::checkin(const std::shared_ptr<Session>& session) {
  if (session == nullptr) return;
  common::MutexLock lock(mutex_);
  const auto it = sessions_.find(session->id);
  // A concurrent close may have erased the entry; the shared_ptr pin was
  // what kept the in-flight request safe, and there is nothing to unmark.
  if (it == sessions_.end()) return;
  if (it->second.busy > 0) it->second.busy -= 1;
}

std::size_t SessionManager::session_count() const {
  common::MutexLock lock(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::live_count() const {
  common::MutexLock lock(mutex_);
  return live_count_locked();
}

std::vector<std::uint64_t> SessionManager::session_ids() const {
  common::MutexLock lock(mutex_);
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) ids.push_back(id);
  return ids;
}

io::Json SessionManager::counters_json() const { return counters_.to_json(); }

}  // namespace rim::svc
