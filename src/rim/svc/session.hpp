#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/svc/protocol.hpp"
#include "rim/svc/token_bucket.hpp"

/// \file session.hpp
/// Multi-tenant session ownership for the scenario service.
///
/// A Session is one tenant's core::Scenario plus a per-session
/// common::Mutex guarding it (handlers lock exactly one session at a time)
/// and a block of lock-free obs counters (safe to read from the metrics
/// registry while the session is being mutated).
///
/// The SessionManager owns the id→session table and enforces the
/// admission-control and memory story (DESIGN.md §9):
///
///  - `max_sessions` caps the total population (live + spilled); creating
///    beyond it is *shed* with code "overloaded", never queued.
///  - `max_live_sessions` caps resident engines. Touching a session beyond
///    the cap evicts the least-recently-used idle session: its
///    core::Snapshot is spilled to disk (binary encoding, checksummed) and
///    the engine is destroyed; the next touch restores it transparently.
///    With an empty `spill_dir`, eviction is disabled and the live cap is
///    enforced at admission instead (create rejects once live == cap).
///  - Busy sessions (a handler holds a checkout) are never evicted; the
///    checkout pin also keeps a concurrently-closed session alive until
///    its in-flight request finishes.
///
/// Lock order is strictly manager → session: the manager lock is held only
/// for table bookkeeping and spill/restore I/O, and handlers acquire the
/// session lock only after releasing the manager (checkout returns a
/// pinned shared_ptr). Eviction locks an *idle* victim's session mutex
/// while holding the manager lock, which cannot contend: idle means no
/// checkout exists, and every locker goes through checkout first.

namespace rim::svc {

/// The admission-control knobs (wire-visible behavior: every limit sheds
/// with an explicit "overloaded"/"bad_frame" response instead of queueing).
struct SvcLimits {
  std::size_t max_sessions = 64;
  std::size_t max_live_sessions = 16;
  /// Requests admitted but not yet answered, across all transports.
  std::size_t max_in_flight = 64;
  /// One frame's payload cap (protocol.hpp).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Directory for LRU snapshot spills; empty disables eviction.
  std::string spill_dir;
  /// Per-tenant fair admission (token_bucket.hpp): each session's bucket
  /// refills at this rate and session commands beyond it are shed with
  /// "overloaded". Non-positive disables per-tenant limiting (the global
  /// in-flight gate still applies).
  double tenant_rate_per_s = 0.0;
  /// Bucket capacity: how many commands a tenant may burst above its
  /// steady rate before being shed (clamped to >= 1).
  double tenant_burst = 16.0;
};

/// Per-session observability (all lock-free; registered as a metrics
/// source that may be snapshotted while the session is mutating).
struct SessionCounters {
  obs::Counter requests;       ///< commands dispatched to this session
  obs::Counter errors;         ///< of those, answered with ok=false
  obs::Counter mutations;      ///< mutations applied (single + batched)
  obs::Counter spills;         ///< times this session was evicted to disk
  obs::Counter spill_restores; ///< times it was restored from disk
  obs::Counter rate_limited;   ///< commands shed by this tenant's bucket
  obs::Counter handle_ns;      ///< total time inside this session's commands
  obs::Histogram latency_ns;   ///< per-command handling latency

  [[nodiscard]] io::Json to_json() const;
};

struct Session {
  Session(std::uint64_t session_id, const core::EvalOptions& options,
          const SvcLimits& limits)
      : id(session_id),
        bucket(limits.tenant_rate_per_s, limits.tenant_burst),
        scenario(options) {}

  const std::uint64_t id;
  SessionCounters counters;
  /// Fair-admission bucket; internally synchronized, checked before the
  /// session mutex is taken so shed commands never touch the Scenario.
  TokenBucket bucket;
  /// DESIGN §9 lock order: the manager's registry mutex, when needed, is
  /// always taken before a session's — spill/unspill walk the registry and
  /// then lock the chosen session, never the reverse.
  common::Mutex mutex RIM_ACQUIRED_AFTER(SessionManager::mutex_);
  core::Scenario scenario RIM_GUARDED_BY(mutex);
};

/// Manager-level counters (lock-free reads for the registry producer).
struct SessionManagerCounters {
  obs::Counter created;
  obs::Counter closed;
  obs::Counter evictions;       ///< LRU spills performed
  obs::Counter spill_restores;  ///< transparent restores from disk
  obs::Counter spill_failures;  ///< spill/restore I/O or validation errors

  [[nodiscard]] io::Json to_json() const;
};

class SessionManager {
 public:
  /// \p eval configures every new session's Scenario.
  explicit SessionManager(SvcLimits limits, core::EvalOptions eval = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Best-effort cleanup of this manager's spill files.
  ~SessionManager();

  /// Create a session. Returns true with the new id and the session
  /// object (for metrics registration), or false with a protocol error
  /// code (code::kOverloaded when at max_sessions, or at the live cap
  /// with eviction disabled) and a human-readable message.
  [[nodiscard]] bool create(std::uint64_t& id,
                            std::shared_ptr<Session>& session,
                            const char*& error_code, std::string& error)
      RIM_EXCLUDES(mutex_);

  /// Close (destroy) a session and delete its spill file. False with
  /// code::kNoSession when the id is unknown. An in-flight checkout keeps
  /// the object alive until released; the table entry goes away now.
  [[nodiscard]] bool close(std::uint64_t id, const char*& error_code,
                           std::string& error) RIM_EXCLUDES(mutex_);

  /// Pin session \p id for one request: restores it from spill when
  /// necessary (evicting another session first if that would exceed the
  /// live cap), marks it busy, and returns it. Returns nullptr with a
  /// protocol error code on unknown id or restore failure. Callers MUST
  /// pair with checkin() after releasing the session mutex.
  [[nodiscard]] std::shared_ptr<Session> checkout(std::uint64_t id,
                                                  const char*& error_code,
                                                  std::string& error)
      RIM_EXCLUDES(mutex_);

  /// Release a checkout pin (the session becomes evictable again).
  void checkin(const std::shared_ptr<Session>& session) RIM_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t session_count() const RIM_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t live_count() const RIM_EXCLUDES(mutex_);

  /// Ascending ids of all sessions (live and spilled).
  [[nodiscard]] std::vector<std::uint64_t> session_ids() const
      RIM_EXCLUDES(mutex_);

  [[nodiscard]] const SvcLimits& limits() const { return limits_; }
  [[nodiscard]] const SessionManagerCounters& counters() const {
    return counters_;
  }

  /// Manager counters as JSON (lock-free; safe as a registry producer).
  [[nodiscard]] io::Json counters_json() const;

  /// The spill file path for session \p id (for tests).
  [[nodiscard]] std::string spill_path(std::uint64_t id) const;

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    bool spilled = false;        ///< engine state lives in the spill file
    std::size_t busy = 0;        ///< open checkouts (never evict while > 0)
    std::uint64_t last_used = 0; ///< LRU tick of the most recent checkout
  };

  /// Evict idle live sessions until live_headroom holds; called with the
  /// manager lock held. Returns false when no idle victim exists or a
  /// spill fails (the caller proceeds over-cap rather than losing state).
  bool evict_lru_locked() RIM_REQUIRES(mutex_);

  [[nodiscard]] bool spill_locked(std::uint64_t id, Entry& entry)
      RIM_REQUIRES(mutex_);
  [[nodiscard]] bool unspill_locked(std::uint64_t id, Entry& entry,
                                    std::string& error) RIM_REQUIRES(mutex_);
  [[nodiscard]] std::size_t live_count_locked() const RIM_REQUIRES(mutex_);

  const SvcLimits limits_;
  const core::EvalOptions eval_;
  SessionManagerCounters counters_;

  mutable common::Mutex mutex_;
  /// std::map: session_ids()/metrics iterate it into deterministic output.
  std::map<std::uint64_t, Entry> sessions_ RIM_GUARDED_BY(mutex_);
  std::uint64_t next_id_ RIM_GUARDED_BY(mutex_) = 1;
  std::uint64_t lru_tick_ RIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace rim::svc
