#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"

/// \file protocol.hpp
/// The rim::svc wire protocol: length-prefixed JSON frames.
///
/// Every message — request or response — travels as one *frame*:
///
///   [4-byte little-endian uint32: payload length][payload bytes]
///
/// The payload is one UTF-8 JSON document produced by io::Json::dump()
/// (compact, deterministic key order), parsed back by io::Json::parse —
/// the same depth-limited, overflow-rejecting parser the robustness
/// tooling already trusts with corrupted snapshots, which is exactly the
/// posture needed for raw network bytes (io/json.hpp documents the
/// limits: Json::kMaxParseDepth nesting, non-finite numbers rejected).
///
/// Requests are objects:   {"cmd": "<command>", "id": N, ...params}
/// Responses are objects:  {"id": N, "ok": true,  "result": {...}}
///                    or:  {"code": "<code>", "error": "...", "id": N,
///                          "ok": false}
///
/// `id` is an opaque client-chosen correlation number (echoed verbatim;
/// 0 when absent or unparseable), so a pipelining client can match
/// responses arriving out of order from the server's dispatch pool.
/// Every request gets exactly one response — including rejections: the
/// admission-control path answers with code "overloaded" instead of
/// queueing (DESIGN.md §9).
///
/// Responses are a pure function of the engine results they report, so a
/// loopback round-trip is byte-identical to encoding the corresponding
/// core::Scenario call directly — the property tests/svc_service_test.cpp
/// pins command by command.

namespace rim::svc {

/// Bytes of the length prefix ahead of every payload.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default admission-control cap on one frame's payload size. A hostile
/// peer can therefore make the server buffer at most this much per
/// connection before being answered with "bad_frame" and disconnected.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Wrap \p payload in a frame (header + bytes).
[[nodiscard]] std::string encode_frame(std::string_view payload);

enum class FrameStatus : std::uint8_t {
  kNeedMore,  ///< buffer holds only a frame prefix; read more bytes
  kFrame,     ///< one complete frame decoded into `payload`
  kTooLarge,  ///< declared length exceeds the cap; the stream is poisoned
};

/// Try to decode one frame from the front of \p buffer. On kFrame,
/// \p consumed is the total bytes to drop from the buffer and \p payload
/// holds the payload copy; on kNeedMore both outputs are untouched; on
/// kTooLarge the declared length exceeded \p max_frame_bytes and the
/// caller must abandon the stream (there is no way to resynchronise).
[[nodiscard]] FrameStatus try_decode_frame(std::string_view buffer,
                                           std::size_t max_frame_bytes,
                                           std::size_t& consumed,
                                           std::string& payload);

// --- command names ---------------------------------------------------------

namespace cmd {
inline constexpr const char* kPing = "ping";
inline constexpr const char* kCreateSession = "create_session";
inline constexpr const char* kCloseSession = "close_session";
inline constexpr const char* kAddNode = "add_node";
inline constexpr const char* kRemoveNode = "remove_node";
inline constexpr const char* kAddEdge = "add_edge";
inline constexpr const char* kRemoveEdge = "remove_edge";
inline constexpr const char* kMove = "move";
inline constexpr const char* kApplyBatch = "apply_batch";
inline constexpr const char* kAssess = "assess";
inline constexpr const char* kQueryInterference = "query_interference";
inline constexpr const char* kSnapshot = "snapshot";
inline constexpr const char* kRestore = "restore";
inline constexpr const char* kSessionStats = "session_stats";
inline constexpr const char* kMetrics = "metrics";
inline constexpr const char* kShutdown = "shutdown";
// Shard replication (DESIGN.md §14): a router ships a session's snapshot
// to a peer backend (replicate_session), and on failover asks the peer to
// promote its replica into a live session (adopt_session). drop_replica
// discards a replica whose origin session closed.
inline constexpr const char* kReplicateSession = "replicate_session";
inline constexpr const char* kAdoptSession = "adopt_session";
inline constexpr const char* kDropReplica = "drop_replica";
// Router-local introspection (shard::Router answers this itself).
inline constexpr const char* kShardStatus = "shard_status";
}  // namespace cmd

// --- error codes -----------------------------------------------------------

namespace code {
/// Payload was not a parseable JSON document.
inline constexpr const char* kBadFrame = "bad_frame";
/// Parseable, but structurally not a valid request for its command.
inline constexpr const char* kBadRequest = "bad_request";
/// `cmd` named no known command.
inline constexpr const char* kUnknownCommand = "unknown_command";
/// `session` named no live or spilled session.
inline constexpr const char* kNoSession = "no_session";
/// Admission control shed this request (max sessions or max in-flight).
inline constexpr const char* kOverloaded = "overloaded";
/// Snapshot payload failed validation on restore.
inline constexpr const char* kRestoreFailed = "restore_failed";
/// Fault-injection fields sent to a service not configured to allow them.
inline constexpr const char* kFaultDisabled = "fault_disabled";
/// Shutdown requested of a service not configured to allow it.
inline constexpr const char* kShutdownDisabled = "shutdown_disabled";
/// Server-side failure outside the request's control (e.g. spill I/O).
inline constexpr const char* kInternal = "internal";
/// adopt_session named an origin session with no stored replica.
inline constexpr const char* kNoReplica = "no_replica";
/// The peer vanished mid-exchange and failover could not recover the
/// request (router-originated; backends never emit this).
inline constexpr const char* kConnectionLost = "connection_lost";
}  // namespace code

// --- response builders -----------------------------------------------------

/// {"id": id, "ok": true, "result": result} as a compact payload string.
[[nodiscard]] std::string make_ok(std::uint64_t id, io::Json result);

/// {"code": code, "error": message, "id": id, "ok": false}.
[[nodiscard]] std::string make_error(std::uint64_t id, const char* code,
                                     const std::string& message);

// --- mutation codec --------------------------------------------------------

/// Wire name of a mutation kind ("add_node", "remove_node", "add_edge",
/// "remove_edge", "move_node").
[[nodiscard]] const char* mutation_kind_name(core::Mutation::Kind kind);

/// {"kind": ..., then only the fields that kind uses: "u"/"v" as numbers,
/// "x"/"y" as JSON numbers (io::Json writes doubles with %.17g, which
/// round-trips every finite IEEE double bit-exactly — determinism over the
/// wire does not need the snapshot hex encoding)}.
[[nodiscard]] io::Json mutation_to_json(const core::Mutation& mutation);

/// Parse one mutation object. Ids must be integers representable as
/// NodeId (kInvalidNode included: replayed fault traces legitimately carry
/// out-of-range ids, which Scenario::apply skips). Returns false with a
/// message on any structural problem.
[[nodiscard]] bool mutation_from_json(const io::Json& json,
                                      core::Mutation& out, std::string& error);

/// Parse a JSON array of mutation objects.
[[nodiscard]] bool mutation_batch_from_json(const io::Json& json,
                                            std::vector<core::Mutation>& out,
                                            std::string& error);

/// Best-effort request-id extraction for reject paths that must answer
/// before (or without) full validation: returns the "id" member when
/// \p payload parses to an object with a numeric id, 0 otherwise.
[[nodiscard]] std::uint64_t peek_request_id(std::string_view payload);

/// Integer-in-range helper shared by the request parsers: true iff \p json
/// is a number with an exact integral value in [0, max].
[[nodiscard]] bool json_to_u64(const io::Json& json, std::uint64_t max,
                               std::uint64_t& out);

}  // namespace rim::svc
