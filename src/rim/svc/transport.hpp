#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "rim/svc/handler.hpp"
#include "rim/svc/protocol.hpp"

/// \file transport.hpp
/// Client-side transport abstraction for the scenario service.
///
/// A Transport carries whole encoded frames (protocol.hpp): the client
/// sends one request frame and receives one response frame. Two
/// implementations exist:
///
///  - LoopbackTransport (here): in-process, deterministic, byte-exact —
///    the frame bytes go through the same encode/decode and admission
///    paths as a socket would, but the request is handled synchronously
///    on the caller's thread. Every protocol test runs over loopback so
///    results are reproducible without binding ports.
///  - TcpClientTransport (tcp.hpp): a real POSIX socket to a TcpServer.
///
/// Because Service::handle is a pure request→response function of the
/// session state, a loopback exchange is byte-identical to the same
/// exchange over TCP — tests/svc_tcp_test.cpp pins that.
///
/// roundtrip() reports a TransportStatus instead of a bare bool so that
/// callers can tell a *lost peer* from every other failure: the shard
/// router treats kConnectionLost as "fail over this session to its
/// replica peer", while kError is surfaced to the caller as-is.

namespace rim::svc {

enum class TransportStatus : std::uint8_t {
  kOk,              ///< response_frame holds one complete response
  kConnectionLost,  ///< peer vanished mid-exchange (reset, EOF, deadline)
  kError,           ///< any other transport failure (see the error string)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one encoded request frame; receive the encoded response
  /// frame. Anything but kOk sets \p error — protocol errors come back
  /// as ordinary error responses, not transport failures.
  [[nodiscard]] virtual TransportStatus roundtrip(std::string_view frame,
                                                  std::string& response_frame,
                                                  std::string& error) = 0;
};

/// In-process transport: decodes the frame (enforcing the handler's
/// max_frame_bytes exactly as the TCP reader does), dispatches through
/// RequestHandler::handle (admission control included), and re-encodes
/// the response.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(RequestHandler& handler) : handler_(handler) {}

  [[nodiscard]] TransportStatus roundtrip(std::string_view frame,
                                          std::string& response_frame,
                                          std::string& error) override;

 private:
  RequestHandler& handler_;
};

}  // namespace rim::svc
