#pragma once

#include <string>
#include <string_view>

#include "rim/svc/service.hpp"

/// \file transport.hpp
/// Client-side transport abstraction for the scenario service.
///
/// A Transport carries whole encoded frames (protocol.hpp): the client
/// sends one request frame and receives one response frame. Two
/// implementations exist:
///
///  - LoopbackTransport (here): in-process, deterministic, byte-exact —
///    the frame bytes go through the same encode/decode and admission
///    paths as a socket would, but the request is handled synchronously
///    on the caller's thread. Every protocol test runs over loopback so
///    results are reproducible without binding ports.
///  - TcpClientTransport (tcp.hpp): a real POSIX socket to a TcpServer.
///
/// Because Service::handle is a pure request→response function of the
/// session state, a loopback exchange is byte-identical to the same
/// exchange over TCP — tests/svc_tcp_test.cpp pins that.

namespace rim::svc {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Deliver one encoded request frame; receive the encoded response
  /// frame. False (with \p error) only on transport failure — protocol
  /// errors come back as ordinary error responses.
  [[nodiscard]] virtual bool roundtrip(std::string_view frame,
                                       std::string& response_frame,
                                       std::string& error) = 0;
};

/// In-process transport: decodes the frame (enforcing the service's
/// max_frame_bytes exactly as the TCP reader does), dispatches through
/// Service::handle (admission control included), and re-encodes the
/// response.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(Service& service) : service_(service) {}

  [[nodiscard]] bool roundtrip(std::string_view frame,
                               std::string& response_frame,
                               std::string& error) override;

 private:
  Service& service_;
};

}  // namespace rim::svc
