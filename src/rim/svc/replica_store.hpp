#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"

/// \file replica_store.hpp
/// Peer-side storage for replicated session snapshots (DESIGN.md §14).
///
/// The shard router promotes the PR 5 spill-to-disk path to spill-to-peer:
/// after each mutating command batch it ships the origin session's
/// versioned, checksummed core::Snapshot to a designated peer backend via
/// the replicate_session command. The peer parks the *validated* snapshot
/// here, keyed by the router's session id (the "origin" — backend-local
/// session ids differ per process, so the router id is the one stable
/// name). On failover, adopt_session promotes the replica into a live
/// session; on session close, drop_replica discards it.
///
/// Monotonicity: each replica carries the router's ship sequence number,
/// and a put() with a stale seq is rejected — a delayed duplicate ship can
/// never roll a replica backwards. A put() that exactly matches the
/// stored replica (same seq, same checksum) answers success instead: a
/// router retrying a ship whose response was torn must converge, not
/// wedge on its own earlier delivery.
///
/// Snapshots are validated (magic, version, checksum) by the
/// replicate_session handler *before* they land here, so everything in the
/// store is restorable modulo engine-option mismatches surfaced at adopt.

namespace rim::svc {

/// Lock-free counters (registered under the "svc" registry source).
struct ReplicaStoreCounters {
  obs::Counter stored;    ///< replicas accepted (new or newer-seq overwrite)
  obs::Counter rejected;  ///< puts refused (stale seq or at capacity)
  obs::Counter adopted;   ///< replicas promoted into live sessions
  obs::Counter dropped;   ///< replicas discarded via drop_replica/close

  [[nodiscard]] io::Json to_json() const;
};

class ReplicaStore {
 public:
  struct Replica {
    std::uint64_t seq = 0;           ///< router ship sequence number
    std::uint64_t checksum = 0;      ///< snapshot payload checksum
    core::Snapshot snapshot;
  };

  explicit ReplicaStore(std::size_t max_replicas = 1024)
      : max_replicas_(max_replicas) {}

  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  /// Store \p snapshot as the replica of \p origin at ship sequence
  /// \p seq. Idempotent: a duplicate of the stored replica (same seq and
  /// checksum) is success. False (with \p error) when seq is otherwise
  /// not newer than the stored one, or the store is at capacity with
  /// \p origin absent.
  [[nodiscard]] bool put(std::uint64_t origin, std::uint64_t seq,
                         core::Snapshot snapshot, std::string& error)
      RIM_EXCLUDES(store_mutex_);

  /// Remove and return the replica of \p origin (the adopt path: a
  /// promoted replica must not be adoptable twice). False when absent.
  [[nodiscard]] bool take(std::uint64_t origin, Replica& out)
      RIM_EXCLUDES(store_mutex_);

  /// Discard the replica of \p origin. True when one existed.
  bool drop(std::uint64_t origin) RIM_EXCLUDES(store_mutex_);

  [[nodiscard]] std::size_t size() const RIM_EXCLUDES(store_mutex_);

  /// Ascending origin ids of all stored replicas (shard_status, tests).
  [[nodiscard]] std::vector<std::uint64_t> origins() const
      RIM_EXCLUDES(store_mutex_);

  [[nodiscard]] const ReplicaStoreCounters& counters() const {
    return counters_;
  }

 private:
  const std::size_t max_replicas_;
  ReplicaStoreCounters counters_;

  mutable common::Mutex store_mutex_;
  /// std::map: origins() iterates it into deterministic output.
  std::map<std::uint64_t, Replica> replicas_ RIM_GUARDED_BY(store_mutex_);
};

}  // namespace rim::svc
