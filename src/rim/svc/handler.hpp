#pragma once

#include <cstddef>
#include <string>
#include <string_view>

/// \file handler.hpp
/// The transport-facing request surface of the serving layer.
///
/// Transports (LoopbackTransport, TcpServer) historically spoke to a
/// concrete svc::Service. The shard router (src/rim/shard) answers the
/// same wire protocol without being a Service, so the four operations a
/// transport actually needs are factored into this interface:
///
///  - try_admit(): claim one in-flight slot *before* enqueueing dispatch
///    work (the shed-not-queue contract, DESIGN.md §9). The returned
///    Ticket releases the slot on destruction.
///  - handle_admitted(): dispatch a payload whose slot the caller holds.
///  - overloaded_response(): the "overloaded" envelope for a refused
///    payload (echoes its id when it parses).
///  - max_frame_bytes(): the admission cap transports enforce per frame.
///
/// handle() composes admit + dispatch for callers without their own
/// queueing (the loopback path).

namespace rim::svc {

class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// One in-flight admission slot. Move-only RAII: releases on
  /// destruction. Falsy when admission was refused.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(RequestHandler* handler) : handler_(handler) {}
    Ticket(Ticket&& other) noexcept : handler_(other.handler_) {
      other.handler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        release();
        handler_ = other.handler_;
        other.handler_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    explicit operator bool() const { return handler_ != nullptr; }
    void release() {
      if (handler_ != nullptr) {
        handler_->release_admission();
        handler_ = nullptr;
      }
    }

   private:
    RequestHandler* handler_ = nullptr;
  };

  /// Claim an in-flight slot; falsy at the handler's in-flight cap.
  [[nodiscard]] virtual Ticket try_admit() = 0;

  /// Dispatch a payload whose admission ticket the caller already holds.
  [[nodiscard]] virtual std::string handle_admitted(
      std::string_view payload) = 0;

  /// The "overloaded" response for \p payload. Also counts the rejection.
  [[nodiscard]] virtual std::string overloaded_response(
      std::string_view payload) = 0;

  /// Per-frame payload cap transports enforce before dispatching.
  [[nodiscard]] virtual std::size_t max_frame_bytes() const = 0;

  /// Admit + dispatch in one call. Sheds with an "overloaded" response
  /// when try_admit() fails.
  [[nodiscard]] std::string handle(std::string_view payload) {
    Ticket ticket = try_admit();
    if (!ticket) return overloaded_response(payload);
    return handle_admitted(payload);
  }

 protected:
  /// Return one in-flight slot (Ticket destruction path).
  virtual void release_admission() = 0;
};

}  // namespace rim::svc
