#include "rim/svc/service.hpp"

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "rim/core/assessor.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/sim/fault.hpp"

namespace rim::svc {

namespace {

/// Internal handler result: the response payload plus its ok-ness (for
/// the counters; the payload itself already encodes it).
struct Reply {
  std::string payload;
  bool ok = false;
};

Reply ok_reply(std::uint64_t id, io::Json result) {
  return {make_ok(id, std::move(result)), true};
}

Reply error_reply(std::uint64_t id, const char* code,
                  const std::string& message) {
  return {make_error(id, code, message), false};
}

std::string session_source_name(std::uint64_t id) {
  return "svc.session." + std::to_string(id);
}

io::Json batch_result_to_json(const core::BatchResult& result) {
  io::JsonObject object;
  object["abort_index"] = io::Json(result.abort_index);
  object["aborted"] = io::Json(result.aborted);
  object["applied"] = io::Json(result.applied);
  object["deferred"] = io::Json(result.deferred);
  object["disk_tasks"] = io::Json(result.disk_tasks);
  object["recounts"] = io::Json(result.recounts);
  object["waves"] = io::Json(result.waves);
  return io::Json(std::move(object));
}

io::Json assessment_to_json(const core::Assessment& assessment) {
  io::JsonObject object;
  io::JsonArray affected;
  affected.reserve(assessment.affected_ids.size());
  for (const NodeId v : assessment.affected_ids) affected.emplace_back(v);
  object["affected_ids"] = io::Json(std::move(affected));
  io::JsonArray deltas;
  deltas.reserve(assessment.delta_per_node.size());
  for (const std::int64_t d : assessment.delta_per_node) {
    deltas.emplace_back(static_cast<long long>(d));
  }
  object["delta_per_node"] = io::Json(std::move(deltas));
  object["max_after"] = io::Json(assessment.max_after);
  object["max_before"] = io::Json(assessment.max_before);
  object["newcomer_interference"] = io::Json(assessment.newcomer_interference);
  return io::Json(std::move(object));
}

/// Parse a required NodeId request field, range-checked against the
/// session's current node count (the direct Scenario setters, unlike
/// apply(), expect in-range ids).
bool node_id_in_range(const io::Json& request, const char* key,
                      std::size_t node_count, NodeId& out,
                      std::string& error) {
  const io::Json* field = request.find(key);
  std::uint64_t value = 0;
  if (field == nullptr || !json_to_u64(*field, kInvalidNode, value)) {
    error = std::string("field '") + key + "' must be an integer node id";
    return false;
  }
  if (value >= node_count) {
    error = std::string("field '") + key + "' (" + std::to_string(value) +
            ") is out of range for a session of " +
            std::to_string(node_count) + " nodes";
    return false;
  }
  out = static_cast<NodeId>(value);
  return true;
}

bool position_from_request(const io::Json& request, geom::Vec2& out,
                           std::string& error) {
  const io::Json* x = request.find("x");
  const io::Json* y = request.find("y");
  if (x == nullptr || y == nullptr || !x->is_number() || !y->is_number()) {
    error = "fields 'x'/'y' must be numbers";
    return false;
  }
  out = {x->as_number(), y->as_number()};
  return true;
}

}  // namespace

io::Json ServiceCounters::to_json() const {
  io::JsonObject object;
  object["requests"] = requests.to_json();
  object["ok"] = ok.to_json();
  object["errors"] = errors.to_json();
  object["rejected_overloaded"] = rejected_overloaded.to_json();
  object["rejected_tenant"] = rejected_tenant.to_json();
  object["rejected_bad_frame"] = rejected_bad_frame.to_json();
  object["handle_ns"] = handle_ns.to_json();
  object["latency_ns"] = latency_ns.to_json();
  return io::Json(std::move(object));
}

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      sessions_(config_.limits, config_.eval),
      batch_pool_(config_.batch_pool_threads) {
  registry_.add_source("svc", [this] {
    io::JsonObject object;
    object["counters"] = counters_.to_json();
    object["in_flight"] =
        io::Json(in_flight_.load(std::memory_order_relaxed));
    io::JsonObject limits;
    limits["max_frame_bytes"] = io::Json(config_.limits.max_frame_bytes);
    limits["max_in_flight"] = io::Json(config_.limits.max_in_flight);
    limits["max_live_sessions"] = io::Json(config_.limits.max_live_sessions);
    limits["max_sessions"] = io::Json(config_.limits.max_sessions);
    limits["tenant_rate_per_s"] = io::Json(config_.limits.tenant_rate_per_s);
    limits["tenant_burst"] = io::Json(config_.limits.tenant_burst);
    object["limits"] = io::Json(std::move(limits));
    object["manager"] = sessions_.counters_json();
    io::JsonObject replicas;
    replicas["count"] = io::Json(replicas_.size());
    replicas["counters"] = replicas_.counters().to_json();
    object["replicas"] = io::Json(std::move(replicas));
    io::JsonObject population;
    population["count"] = io::Json(sessions_.session_count());
    population["live"] = io::Json(sessions_.live_count());
    object["sessions"] = io::Json(std::move(population));
    return io::Json(std::move(object));
  });
}

Service::~Service() { registry_.remove_source("svc"); }

Service::Ticket Service::try_admit() {
  const std::size_t previous =
      in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (previous >= config_.limits.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return Ticket();
  }
  return Ticket(this);
}

std::string Service::overloaded_response(std::string_view payload) {
  ++counters_.requests;
  ++counters_.errors;
  ++counters_.rejected_overloaded;
  return make_error(peek_request_id(payload), code::kOverloaded,
                    "service at max in-flight requests (" +
                        std::to_string(config_.limits.max_in_flight) +
                        "); retry later");
}

std::string Service::handle_admitted(std::string_view payload) {
  const obs::ScopedTimer timer(counters_.handle_ns, &counters_.latency_ns);
  ++counters_.requests;
  std::string response = dispatch(payload);
  return response;
}

std::string Service::dispatch(std::string_view payload) {
  io::Json request;
  std::string error;
  if (!io::Json::parse(payload, request, error)) {
    ++counters_.errors;
    ++counters_.rejected_bad_frame;
    return make_error(0, code::kBadFrame, error);
  }
  if (!request.is_object()) {
    ++counters_.errors;
    return make_error(0, code::kBadRequest, "request must be a JSON object");
  }
  std::uint64_t id = 0;
  const io::Json* id_field = request.find("id");
  if (id_field != nullptr) {
    (void)json_to_u64(*id_field, std::numeric_limits<std::uint64_t>::max(),
                      id);
  }
  const io::Json* cmd_field = request.find("cmd");
  const std::string* command =
      cmd_field != nullptr ? cmd_field->as_string() : nullptr;
  if (command == nullptr) {
    ++counters_.errors;
    return make_error(id, code::kBadRequest,
                      "field 'cmd' must be a command name string");
  }
  std::string response = dispatch_command(id, *command, request);
  // Responses are exclusively our builders' output, so ok-ness is read
  // back from the envelope rather than threaded through every handler.
  if (response.find("\"ok\":true") != std::string::npos) {
    ++counters_.ok;
  } else {
    ++counters_.errors;
  }
  return response;
}

std::string Service::dispatch_command(std::uint64_t id,
                                      const std::string& command,
                                      const io::Json& request) {
  if (command == cmd::kPing) {
    io::JsonObject result;
    result["pong"] = io::Json(true);
    return make_ok(id, io::Json(std::move(result)));
  }
  if (command == cmd::kCreateSession) {
    std::uint64_t session_id = 0;
    std::shared_ptr<Session> session;
    const char* error_code = code::kInternal;
    std::string error;
    if (!sessions_.create(session_id, session, error_code, error)) {
      if (error_code == code::kOverloaded) ++counters_.rejected_overloaded;
      return make_error(id, error_code, error);
    }
    registry_.add_source(session_source_name(session_id),
                         [session] { return session->counters.to_json(); });
    io::JsonObject result;
    result["session"] = io::Json(session_id);
    return make_ok(id, io::Json(std::move(result)));
  }
  if (command == cmd::kCloseSession) {
    const io::Json* session_field = request.find("session");
    std::uint64_t session_id = 0;
    if (session_field == nullptr ||
        !json_to_u64(*session_field, std::numeric_limits<std::uint64_t>::max(),
                     session_id)) {
      return make_error(id, code::kBadRequest,
                        "field 'session' must be an integer session id");
    }
    const char* error_code = code::kInternal;
    std::string error;
    if (!sessions_.close(session_id, error_code, error)) {
      return make_error(id, error_code, error);
    }
    registry_.remove_source(session_source_name(session_id));
    io::JsonObject result;
    result["closed"] = io::Json(true);
    return make_ok(id, io::Json(std::move(result)));
  }
  if (command == cmd::kMetrics) {
    return make_ok(id, registry_.snapshot());
  }
  if (command == cmd::kShutdown) {
    if (!config_.allow_shutdown) {
      return make_error(id, code::kShutdownDisabled,
                        "this service does not accept shutdown requests");
    }
    request_shutdown();
    io::JsonObject result;
    result["shutting_down"] = io::Json(true);
    return make_ok(id, io::Json(std::move(result)));
  }
  if (command == cmd::kReplicateSession || command == cmd::kAdoptSession ||
      command == cmd::kDropReplica) {
    return dispatch_replica_command(id, command, request);
  }
  return dispatch_session_command(id, command, request);
}

std::string Service::dispatch_replica_command(std::uint64_t id,
                                              const std::string& command,
                                              const io::Json& request) {
  const io::Json* origin_field = request.find("origin");
  std::uint64_t origin = 0;
  if (origin_field == nullptr ||
      !json_to_u64(*origin_field, std::numeric_limits<std::uint64_t>::max(),
                   origin)) {
    return make_error(id, code::kBadRequest,
                      "field 'origin' must be an integer origin session id");
  }
  if (command == cmd::kReplicateSession) {
    const io::Json* seq_field = request.find("seq");
    std::uint64_t seq = 0;
    if (seq_field == nullptr ||
        !json_to_u64(*seq_field, std::numeric_limits<std::uint64_t>::max(),
                     seq)) {
      return make_error(id, code::kBadRequest,
                        "field 'seq' must be an integer ship sequence");
    }
    const io::Json* snapshot_field = request.find("snapshot");
    core::Snapshot snapshot;
    std::string error;
    if (snapshot_field == nullptr ||
        !core::Snapshot::from_json(*snapshot_field, snapshot, error)) {
      return make_error(id, code::kRestoreFailed,
                        snapshot_field == nullptr
                            ? "field 'snapshot' must be a snapshot document"
                            : error);
    }
    const std::uint64_t checksum = snapshot.payload_checksum();
    if (!replicas_.put(origin, seq, std::move(snapshot), error)) {
      return make_error(id, code::kBadRequest, error);
    }
    io::JsonObject result;
    result["checksum"] = io::Json(checksum);
    result["origin"] = io::Json(origin);
    result["seq"] = io::Json(seq);
    result["stored"] = io::Json(true);
    return make_ok(id, io::Json(std::move(result)));
  }
  if (command == cmd::kDropReplica) {
    io::JsonObject result;
    result["dropped"] = io::Json(replicas_.drop(origin));
    result["origin"] = io::Json(origin);
    return make_ok(id, io::Json(std::move(result)));
  }
  // cmd::kAdoptSession: promote the replica into a live session. The
  // replica is *taken* (single adoption), then restored through the same
  // checkout/restore path a client restore uses, so the promoted session
  // is observationally identical to the origin at ship time.
  ReplicaStore::Replica replica;
  if (!replicas_.take(origin, replica)) {
    return make_error(id, code::kNoReplica,
                      "no replica for origin " + std::to_string(origin));
  }
  std::uint64_t session_id = 0;
  std::shared_ptr<Session> session;
  const char* error_code = code::kInternal;
  std::string error;
  if (!sessions_.create(session_id, session, error_code, error)) {
    if (error_code == code::kOverloaded) ++counters_.rejected_overloaded;
    return make_error(id, error_code, error);
  }
  registry_.add_source(session_source_name(session_id),
                       [session] { return session->counters.to_json(); });
  std::shared_ptr<Session> pinned =
      sessions_.checkout(session_id, error_code, error);
  bool restored = false;
  if (pinned != nullptr) {
    {
      common::MutexLock lock(pinned->mutex);
      restored = pinned->scenario.restore(replica.snapshot, &error);
    }
    sessions_.checkin(pinned);
  }
  if (!restored) {
    const char* close_code = code::kInternal;
    std::string close_error;
    (void)sessions_.close(session_id, close_code, close_error);
    registry_.remove_source(session_source_name(session_id));
    return make_error(id, code::kRestoreFailed, error);
  }
  io::JsonObject result;
  result["checksum"] = io::Json(replica.checksum);
  result["origin"] = io::Json(origin);
  result["seq"] = io::Json(replica.seq);
  result["session"] = io::Json(session_id);
  return make_ok(id, io::Json(std::move(result)));
}

std::string Service::dispatch_session_command(std::uint64_t id,
                                              const std::string& command,
                                              const io::Json& request) {
  const bool known =
      command == cmd::kAddNode || command == cmd::kRemoveNode ||
      command == cmd::kAddEdge || command == cmd::kRemoveEdge ||
      command == cmd::kMove || command == cmd::kApplyBatch ||
      command == cmd::kAssess || command == cmd::kQueryInterference ||
      command == cmd::kSnapshot || command == cmd::kRestore ||
      command == cmd::kSessionStats;
  if (!known) {
    return make_error(id, code::kUnknownCommand,
                      "unknown command '" + command + "'");
  }
  const io::Json* session_field = request.find("session");
  std::uint64_t session_id = 0;
  if (session_field == nullptr ||
      !json_to_u64(*session_field, std::numeric_limits<std::uint64_t>::max(),
                   session_id)) {
    return make_error(id, code::kBadRequest,
                      "field 'session' must be an integer session id");
  }
  const char* error_code = code::kInternal;
  std::string error;
  std::shared_ptr<Session> session =
      sessions_.checkout(session_id, error_code, error);
  if (session == nullptr) return make_error(id, error_code, error);

  // Per-tenant fair admission: spend one token of this session's bucket
  // before taking its mutex. A shed is the same explicit "overloaded"
  // envelope as the global gate — the tenant over its rate is refused,
  // other tenants' buckets are untouched.
  if (session->bucket.enabled() &&
      !session->bucket.try_acquire(obs::now_ns())) {
    ++session->counters.requests;
    ++session->counters.errors;
    ++session->counters.rate_limited;
    ++counters_.rejected_tenant;
    sessions_.checkin(session);
    return make_error(id, code::kOverloaded,
                      "tenant rate limit exceeded (" +
                          std::to_string(config_.limits.tenant_rate_per_s) +
                          "/s, burst " +
                          std::to_string(config_.limits.tenant_burst) +
                          "); retry later");
  }

  Reply reply;
  {
    Session& s = *session;
    const obs::ScopedTimer timer(s.counters.handle_ns,
                                 &s.counters.latency_ns);
    ++s.counters.requests;
    common::MutexLock lock(s.mutex);

    if (command == cmd::kAddNode) {
      geom::Vec2 position{};
      if (!position_from_request(request, position, error)) {
        reply = error_reply(id, code::kBadRequest, error);
      } else {
        const NodeId node = s.scenario.add_node(position);
        ++s.counters.mutations;
        io::JsonObject result;
        result["node"] = io::Json(node);
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else if (command == cmd::kRemoveNode) {
      NodeId v = kInvalidNode;
      if (!node_id_in_range(request, "v", s.scenario.node_count(), v,
                            error)) {
        reply = error_reply(id, code::kBadRequest, error);
      } else {
        const NodeId renamed = s.scenario.remove_node(v);
        ++s.counters.mutations;
        io::JsonObject result;
        result["renamed"] = renamed == kInvalidNode
                                ? io::Json(nullptr)
                                : io::Json(renamed);
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else if (command == cmd::kAddEdge || command == cmd::kRemoveEdge) {
      NodeId u = kInvalidNode;
      NodeId v = kInvalidNode;
      if (!node_id_in_range(request, "u", s.scenario.node_count(), u,
                            error) ||
          !node_id_in_range(request, "v", s.scenario.node_count(), v,
                            error)) {
        reply = error_reply(id, code::kBadRequest, error);
      } else if (command == cmd::kAddEdge) {
        const bool added = s.scenario.add_edge(u, v);
        ++s.counters.mutations;
        io::JsonObject result;
        result["added"] = io::Json(added);
        reply = ok_reply(id, io::Json(std::move(result)));
      } else {
        const bool removed = s.scenario.remove_edge(u, v);
        ++s.counters.mutations;
        io::JsonObject result;
        result["removed"] = io::Json(removed);
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else if (command == cmd::kMove) {
      NodeId v = kInvalidNode;
      geom::Vec2 position{};
      if (!node_id_in_range(request, "v", s.scenario.node_count(), v,
                            error) ||
          !position_from_request(request, position, error)) {
        reply = error_reply(id, code::kBadRequest, error);
      } else {
        s.scenario.move_node(v, position);
        ++s.counters.mutations;
        io::JsonObject result;
        result["moved"] = io::Json(true);
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else if (command == cmd::kApplyBatch) {
      std::vector<core::Mutation> batch;
      const io::Json* batch_field = request.find("batch");
      if (batch_field == nullptr ||
          !mutation_batch_from_json(*batch_field, batch, error)) {
        reply = error_reply(id, code::kBadRequest,
                            batch_field == nullptr
                                ? "field 'batch' must be a mutation array"
                                : error);
      } else if (const io::Json* fault_field = request.find("fault");
                 fault_field != nullptr) {
        if (!config_.enable_fault_injection) {
          reply = error_reply(id, code::kFaultDisabled,
                              "fault injection is disabled on this service");
        } else {
          sim::FaultEvent event;
          const io::Json* kind = fault_field->find("kind");
          const io::Json* index = fault_field->find("index");
          std::uint64_t index_value = 0;
          const std::string* kind_name =
              kind != nullptr ? kind->as_string() : nullptr;
          if (kind_name == nullptr ||
              !sim::fault_kind_from_string(*kind_name, event.kind) ||
              index == nullptr ||
              !json_to_u64(*index, std::numeric_limits<std::uint32_t>::max(),
                           index_value)) {
            reply = error_reply(id, code::kBadRequest,
                                "field 'fault' must carry a fault kind "
                                "name and an integer index");
          } else {
            event.index = static_cast<std::size_t>(index_value);
            const bool recover =
                request.find("recover") == nullptr ||
                request.find("recover")->as_bool(true);
            const sim::FaultedBatchOutcome outcome =
                sim::apply_batch_with_faults(s.scenario, batch, &event,
                                             &batch_pool_, recover);
            s.counters.mutations += outcome.result.applied;
            io::Json result_json = batch_result_to_json(outcome.result);
            io::JsonObject result = *result_json.as_object();
            result["fault_fired"] = io::Json(outcome.fault_fired);
            result["restored"] = io::Json(outcome.restored);
            reply = ok_reply(id, io::Json(std::move(result)));
          }
        }
      } else {
        const core::BatchResult result =
            s.scenario.apply_batch(batch, &batch_pool_);
        s.counters.mutations += result.applied;
        reply = ok_reply(id, batch_result_to_json(result));
      }
    } else if (command == cmd::kAssess) {
      std::vector<core::Mutation> mutations;
      const io::Json* mutations_field = request.find("mutations");
      if (mutations_field == nullptr ||
          !mutation_batch_from_json(*mutations_field, mutations, error)) {
        reply = error_reply(id, code::kBadRequest,
                            mutations_field == nullptr
                                ? "field 'mutations' must be a mutation array"
                                : error);
      } else {
        const core::Assessment assessment = core::Assessor{}.assess(
            s.scenario, std::span<const core::Mutation>(mutations));
        reply = ok_reply(id, assessment_to_json(assessment));
      }
    } else if (command == cmd::kQueryInterference) {
      if (const io::Json* v_field = request.find("v"); v_field != nullptr) {
        NodeId v = kInvalidNode;
        if (!node_id_in_range(request, "v", s.scenario.node_count(), v,
                              error)) {
          reply = error_reply(id, code::kBadRequest, error);
        } else {
          io::JsonObject result;
          result["node"] = io::Json(v);
          result["value"] = io::Json(s.scenario.interference_of(v));
          reply = ok_reply(id, io::Json(std::move(result)));
        }
      } else {
        io::JsonObject result;
        io::JsonArray per_node;
        const std::span<const std::uint32_t> interference =
            s.scenario.interference();
        per_node.reserve(interference.size());
        for (const std::uint32_t value : interference) {
          per_node.emplace_back(value);
        }
        result["max"] = io::Json(s.scenario.max_interference());
        result["per_node"] = io::Json(std::move(per_node));
        result["total"] = io::Json(s.scenario.total_interference());
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else if (command == cmd::kSnapshot) {
      core::Snapshot snapshot = s.scenario.snapshot();
      io::JsonObject result;
      result["snapshot"] = snapshot.to_json();
      reply = ok_reply(id, io::Json(std::move(result)));
    } else if (command == cmd::kRestore) {
      const io::Json* snapshot_field = request.find("snapshot");
      core::Snapshot snapshot;
      if (snapshot_field == nullptr ||
          !core::Snapshot::from_json(*snapshot_field, snapshot, error)) {
        reply = error_reply(id, code::kRestoreFailed,
                            snapshot_field == nullptr
                                ? "field 'snapshot' must be a snapshot "
                                  "document"
                                : error);
      } else if (!s.scenario.restore(snapshot, &error)) {
        reply = error_reply(id, code::kRestoreFailed, error);
      } else {
        io::JsonObject result;
        result["restored"] = io::Json(true);
        reply = ok_reply(id, io::Json(std::move(result)));
      }
    } else {  // cmd::kSessionStats
      io::JsonObject result;
      result["edges"] = io::Json(s.scenario.edge_count());
      result["nodes"] = io::Json(s.scenario.node_count());
      result["stats"] = s.scenario.stats_json();
      reply = ok_reply(id, io::Json(std::move(result)));
    }

    if (!reply.ok) ++s.counters.errors;
  }
  sessions_.checkin(session);
  return std::move(reply.payload);
}

void Service::wait_shutdown() {
  common::MutexLock lock(shutdown_mutex_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    shutdown_cv_.wait(lock.native());
  }
}

void Service::request_shutdown() {
  {
    common::MutexLock lock(shutdown_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  shutdown_cv_.notify_all();
}

}  // namespace rim::svc
