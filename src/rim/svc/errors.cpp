#include "rim/svc/errors.hpp"

#include "rim/svc/protocol.hpp"

namespace rim::svc {

const char* to_wire(SvcErrorCode code) {
  switch (code) {
    case SvcErrorCode::kTransport:
      return "transport";
    case SvcErrorCode::kConnectionLost:
      return "connection_lost";
    case SvcErrorCode::kBadFrame:
      return code::kBadFrame;
    case SvcErrorCode::kBadRequest:
      return code::kBadRequest;
    case SvcErrorCode::kUnknownCommand:
      return code::kUnknownCommand;
    case SvcErrorCode::kNoSession:
      return code::kNoSession;
    case SvcErrorCode::kNoReplica:
      return code::kNoReplica;
    case SvcErrorCode::kOverloaded:
      return code::kOverloaded;
    case SvcErrorCode::kRestoreFailed:
      return code::kRestoreFailed;
    case SvcErrorCode::kFaultDisabled:
      return code::kFaultDisabled;
    case SvcErrorCode::kShutdownDisabled:
      return code::kShutdownDisabled;
    case SvcErrorCode::kInternal:
      return code::kInternal;
  }
  return code::kInternal;
}

SvcErrorCode code_from_wire(std::string_view wire) {
  if (wire == "transport") return SvcErrorCode::kTransport;
  if (wire == "connection_lost") return SvcErrorCode::kConnectionLost;
  if (wire == code::kBadFrame) return SvcErrorCode::kBadFrame;
  if (wire == code::kBadRequest) return SvcErrorCode::kBadRequest;
  if (wire == code::kUnknownCommand) return SvcErrorCode::kUnknownCommand;
  if (wire == code::kNoSession) return SvcErrorCode::kNoSession;
  if (wire == code::kNoReplica) return SvcErrorCode::kNoReplica;
  if (wire == code::kOverloaded) return SvcErrorCode::kOverloaded;
  if (wire == code::kRestoreFailed) return SvcErrorCode::kRestoreFailed;
  if (wire == code::kFaultDisabled) return SvcErrorCode::kFaultDisabled;
  if (wire == code::kShutdownDisabled) return SvcErrorCode::kShutdownDisabled;
  return SvcErrorCode::kInternal;
}

}  // namespace rim::svc
