#include "rim/io/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rim::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  assert(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint32_t value) { return cell(std::to_string(value)); }
Table& Table::cell(bool value) { return cell(std::string(value ? "yes" : "no")); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << value;
    }
    out << " |\n";
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rim::io
