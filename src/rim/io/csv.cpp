#include "rim/io/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rim::io {

namespace {

std::runtime_error malformed(const std::string& line) {
  return std::runtime_error("malformed CSV line: '" + line + "'");
}

}  // namespace

void write_points_csv(std::ostream& out, std::span<const geom::Vec2> points) {
  out << "x,y\n";
  out.precision(17);
  for (const geom::Vec2& p : points) out << p.x << ',' << p.y << '\n';
}

geom::PointSet read_points_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "x,y") {
    throw std::runtime_error("missing 'x,y' CSV header");
  }
  geom::PointSet points;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    geom::Vec2 p;
    char comma = 0;
    if (!(ls >> p.x >> comma >> p.y) || comma != ',') throw malformed(line);
    points.push_back(p);
  }
  return points;
}

void write_edges_csv(std::ostream& out, const graph::Graph& g) {
  out << "u,v\n";
  for (graph::Edge e : g.edges()) out << e.u << ',' << e.v << '\n';
}

graph::Graph read_edges_csv(std::istream& in, std::size_t node_count) {
  std::string line;
  if (!std::getline(in, line) || line != "u,v") {
    throw std::runtime_error("missing 'u,v' CSV header");
  }
  graph::Graph g(node_count);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    char comma = 0;
    if (!(ls >> u >> comma >> v) || comma != ',') throw malformed(line);
    if (u >= node_count || v >= node_count) {
      throw std::runtime_error("edge endpoint out of range in CSV");
    }
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace rim::io
