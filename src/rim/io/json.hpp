#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

/// \file json.hpp
/// Minimal JSON value, writer, and parser: machine-readable experiment
/// output next to the human-readable tables (no external dependencies).
/// The parser exists for the robustness tooling — snapshots (core::Snapshot)
/// and fuzz traces (sim::FuzzTrace) serialise to JSON and must be read back
/// to replay; everything else in the library only ever writes.

namespace rim::io {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(unsigned i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Serialise compactly (no insignificant whitespace); object keys are
  /// emitted in map order, so output is deterministic.
  void write(std::ostream& out) const;

  /// Convenience: serialise to a string.
  [[nodiscard]] std::string dump() const;

  /// Maximum container nesting parse() accepts. The parser recurses once
  /// per nesting level, so this bounds stack use against hostile input (a
  /// kilobyte of '[' must be a parse error, not a stack overflow). 64 is
  /// far beyond any document the library writes (snapshots nest < 8 deep)
  /// while keeping worst-case recursion trivially safe on any thread's
  /// stack. Part of the wire contract: svc transports reject frames whose
  /// payloads exceed it with "bad_frame".
  static constexpr std::size_t kMaxParseDepth = 64;

  /// Parse \p text into \p out. Returns false (with a position-annotated
  /// message in \p error) on malformed input — never UB, never throws.
  /// Accepts exactly what write() emits plus standard JSON whitespace.
  /// Hardened for untrusted input: nesting beyond kMaxParseDepth and
  /// numbers that overflow double (JSON has no Inf/NaN) are parse errors.
  [[nodiscard]] static bool parse(std::string_view text, Json& out,
                                  std::string& error);

  // --- read accessors (for parsed documents) -----------------------------

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    const bool* b = std::get_if<bool>(&value_);
    return b != nullptr ? *b : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    const double* d = std::get_if<double>(&value_);
    return d != nullptr ? *d : fallback;
  }
  /// nullptr when the value is not of the requested shape.
  [[nodiscard]] const std::string* as_string() const {
    return std::get_if<std::string>(&value_);
  }
  [[nodiscard]] const JsonArray* as_array() const {
    return std::get_if<JsonArray>(&value_);
  }
  [[nodiscard]] const JsonObject* as_object() const {
    return std::get_if<JsonObject>(&value_);
  }

  /// Object member lookup; nullptr when not an object or the key is absent.
  [[nodiscard]] const Json* find(const std::string& key) const {
    const JsonObject* o = as_object();
    if (o == nullptr) return nullptr;
    const auto it = o->find(key);
    return it != o->end() ? &it->second : nullptr;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

/// Escape a string per RFC 8259 (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace rim::io
