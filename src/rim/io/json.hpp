#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

/// \file json.hpp
/// Minimal JSON value + writer: machine-readable experiment output next to
/// the human-readable tables (no external dependencies, write-only — the
/// library never needs to parse JSON).

namespace rim::io {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(unsigned i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Serialise compactly (no insignificant whitespace); object keys are
  /// emitted in map order, so output is deterministic.
  void write(std::ostream& out) const;

  /// Convenience: serialise to a string.
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

/// Escape a string per RFC 8259 (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace rim::io
