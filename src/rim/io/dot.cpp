#include "rim/io/dot.hpp"

#include <ostream>

namespace rim::io {

void write_dot(std::ostream& out, const graph::Graph& g,
               std::span<const geom::Vec2> points, const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n"
      << "  node [shape=point, width=0.08];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  n" << v << " [pos=\"" << points[v].x * options.position_scale << ','
        << points[v].y * options.position_scale << "!\"";
    if (options.include_labels) out << ", xlabel=\"" << v << "\"";
    out << "];\n";
  }
  for (graph::Edge e : g.edges()) {
    out << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  out << "}\n";
}

}  // namespace rim::io
