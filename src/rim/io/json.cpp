#include "rim/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace rim::io {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& out) const {
  struct Visitor {
    std::ostream& out;
    void operator()(std::nullptr_t) const { out << "null"; }
    void operator()(bool b) const { out << (b ? "true" : "false"); }
    void operator()(double d) const {
      if (!std::isfinite(d)) {
        out << "null";  // JSON has no Inf/NaN
        return;
      }
      // Integral doubles print without a fraction for readability.
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        out << static_cast<long long>(d);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", d);
        out << buffer;
      }
    }
    void operator()(const std::string& s) const {
      out << '"' << json_escape(s) << '"';
    }
    void operator()(const JsonArray& a) const {
      out << '[';
      bool first = true;
      for (const Json& v : a) {
        if (!first) out << ',';
        first = false;
        v.write(out);
      }
      out << ']';
    }
    void operator()(const JsonObject& o) const {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(key) << "\":";
        value.write(out);
      }
      out << '}';
    }
  };
  std::visit(Visitor{out}, value_);
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-limited so a
/// hostile document (e.g. a corrupted snapshot full of '[') cannot blow the
/// stack — parse failures must be errors, never UB.
class Parser {
 public:
  Parser(std::string_view text, std::string& error)
      : text_(text), error_(error) {}

  bool run(Json& out) {
    if (!parse_value(out, 0)) return false;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " + what;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool peek(char& c) {
    skip_whitespace();
    if (pos_ >= text_.size()) return false;
    c = text_[pos_];
    return true;
  }

  bool literal(std::string_view word, Json value, Json& out) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected number");
    // JSON numbers begin with '-' or a digit; strtod is laxer ("+1",
    // ".5", "infinity") — reject those spellings before it sees them.
    const std::size_t digit_at = text_[start] == '-' ? start + 1 : start;
    if (digit_at >= pos_ || text_[digit_at] < '0' || text_[digit_at] > '9') {
      pos_ = start;
      return fail("malformed number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    // strtod saturates overflow to ±inf; JSON has no Inf/NaN, and the
    // writer never emits them, so an overflowing literal is hostile or
    // corrupt input — reject it rather than smuggle a non-finite through.
    if (!std::isfinite(value)) {
      pos_ = start;
      return fail("number overflows double");
    }
    out = Json(value);
    return true;
  }

  bool parse_value(Json& out, std::size_t depth) {
    if (depth > Json::kMaxParseDepth) return fail("nesting too deep");
    char c = 0;
    if (!peek(c)) return fail("unexpected end of input");
    switch (c) {
      case 'n': return literal("null", Json(nullptr), out);
      case 't': return literal("true", Json(true), out);
      case 'f': return literal("false", Json(false), out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        JsonArray array;
        char next = 0;
        if (!peek(next)) return fail("unterminated array");
        if (next == ']') {
          ++pos_;
          out = Json(std::move(array));
          return true;
        }
        while (true) {
          Json element;
          if (!parse_value(element, depth + 1)) return false;
          array.push_back(std::move(element));
          if (!peek(next)) return fail("unterminated array");
          ++pos_;
          if (next == ']') break;
          if (next != ',') return fail("expected ',' or ']' in array");
        }
        out = Json(std::move(array));
        return true;
      }
      case '{': {
        ++pos_;
        JsonObject object;
        char next = 0;
        if (!peek(next)) return fail("unterminated object");
        if (next == '}') {
          ++pos_;
          out = Json(std::move(object));
          return true;
        }
        while (true) {
          if (!peek(next) || next != '"') return fail("expected object key");
          std::string key;
          if (!parse_string(key)) return false;
          if (!peek(next) || next != ':') return fail("expected ':'");
          ++pos_;
          Json value;
          if (!parse_value(value, depth + 1)) return false;
          object.insert_or_assign(std::move(key), std::move(value));
          if (!peek(next)) return fail("unterminated object");
          ++pos_;
          if (next == '}') break;
          if (next != ',') return fail("expected ',' or '}' in object");
        }
        out = Json(std::move(object));
        return true;
      }
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::parse(std::string_view text, Json& out, std::string& error) {
  error.clear();
  return Parser(text, error).run(out);
}

}  // namespace rim::io
