#include "rim/io/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace rim::io {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::ostream& out) const {
  struct Visitor {
    std::ostream& out;
    void operator()(std::nullptr_t) const { out << "null"; }
    void operator()(bool b) const { out << (b ? "true" : "false"); }
    void operator()(double d) const {
      if (!std::isfinite(d)) {
        out << "null";  // JSON has no Inf/NaN
        return;
      }
      // Integral doubles print without a fraction for readability.
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        out << static_cast<long long>(d);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", d);
        out << buffer;
      }
    }
    void operator()(const std::string& s) const {
      out << '"' << json_escape(s) << '"';
    }
    void operator()(const JsonArray& a) const {
      out << '[';
      bool first = true;
      for (const Json& v : a) {
        if (!first) out << ',';
        first = false;
        v.write(out);
      }
      out << ']';
    }
    void operator()(const JsonObject& o) const {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(key) << "\":";
        value.write(out);
      }
      out << '}';
    }
  };
  std::visit(Visitor{out}, value_);
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace rim::io
