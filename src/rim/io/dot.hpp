#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file dot.hpp
/// Graphviz export of positioned topologies; `neato -n2` renders the
/// figures (the examples print pointers to this).

namespace rim::io {

struct DotOptions {
  std::string graph_name = "topology";
  double position_scale = 10.0;  ///< multiply coordinates into DOT units
  bool include_labels = true;
};

/// Write an undirected graph with pinned node positions.
void write_dot(std::ostream& out, const graph::Graph& g,
               std::span<const geom::Vec2> points, const DotOptions& options = {});

}  // namespace rim::io
