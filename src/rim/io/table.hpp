#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Right-aligned ASCII tables — the output format of every experiment
/// binary (paper-shaped rows, stable column widths, reproducible byte for
/// byte given the same inputs).

namespace rim::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint32_t value);
  Table& cell(bool value);
  /// Fixed-precision floating cell.
  Table& cell(double value, int precision = 3);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with column separators and a header rule.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rim::io
