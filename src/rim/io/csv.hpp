#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file csv.hpp
/// CSV import/export for point sets and edge lists, so instances and
/// topologies can round-trip to external plotting tools.

namespace rim::io {

/// Write "x,y" rows with a header.
void write_points_csv(std::ostream& out, std::span<const geom::Vec2> points);

/// Parse the output of write_points_csv (header required).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] geom::PointSet read_points_csv(std::istream& in);

/// Write "u,v" rows with a header.
void write_edges_csv(std::ostream& out, const graph::Graph& g);

/// Parse the output of write_edges_csv into a graph on \p node_count nodes.
/// Throws std::runtime_error on malformed input or out-of-range ids.
[[nodiscard]] graph::Graph read_edges_csv(std::istream& in, std::size_t node_count);

}  // namespace rim::io
