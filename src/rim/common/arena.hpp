#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

/// \file arena.hpp
/// Monotonic bump allocator for batch-scoped scratch memory.
///
/// The batch pipeline (core::Scenario::apply_batch) used to build a fresh
/// set of std::vectors per call — task lists, recount lists, one vector per
/// conflict-free wave — churning the heap on every tick of a churn
/// workload. Arena replaces that with bump allocation: one pointer
/// increment per allocation, no per-object free, and reset() recycles the
/// high-water blocks so a steady-state batch loop allocates nothing at all
/// after warm-up.
///
/// Lifetime rules (DESIGN.md §10):
///  - everything allocated from an Arena dies, at the latest, at the next
///    reset(); destructors are NOT run — only trivially destructible types
///    may be placed in an arena (enforced with static_assert);
///  - reset() keeps the largest block, so steady-state reuse is
///    allocation-free while pathological batches release their overflow
///    blocks on the next reset;
///  - an Arena is single-threaded by contract. Parallel wave tasks may read
///    arena-backed arrays freely, but only the owning (serial) phase
///    allocates.
namespace rim::common {

class Arena {
 public:
  /// \p initial_bytes sizes the first block (rounded up per allocation as
  /// needed); later blocks double, so a mis-sized hint only costs O(log)
  /// extra blocks until reset() consolidates.
  explicit Arena(std::size_t initial_bytes = 1u << 14)
      : next_block_bytes_(initial_bytes == 0 ? 1u << 14 : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Movable: outstanding allocations stay valid (block ownership transfers).
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Uninitialized storage for \p n objects of \p T, aligned for T.
  /// Returns a valid (dangling-safe, unique) pointer even for n == 0.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(raw_alloc(n * sizeof(T), alignof(T)));
  }

  /// Construct one T in place. T must be trivially destructible (the arena
  /// never calls destructors).
  template <typename T, typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return ::new (raw_alloc(sizeof(T), alignof(T)))
        T{static_cast<Args&&>(args)...};
  }

  /// Invalidate every outstanding allocation and recycle the memory. The
  /// largest block is retained (steady-state reuse); the rest is freed.
  void reset() {
    if (blocks_.size() > 1) {
      // Keep only the biggest block: a batch loop converges to exactly one
      // allocation-free block after the first over-sized batch.
      std::size_t best = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[best].size) best = i;
      }
      if (best != 0) std::swap(blocks_[0], blocks_[best]);
      blocks_.resize(1);
    }
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since construction/reset (allocation watermark).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Blocks currently owned (1 in steady state).
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* raw_alloc(std::size_t bytes, std::size_t align) {
    assert((align & (align - 1)) == 0);
    if (blocks_.empty()) grow(bytes + align);
    std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes > blocks_[0].size) {
      grow(bytes + align);
      aligned = (offset_ + align - 1) & ~(align - 1);
    }
    offset_ = aligned + bytes;
    used_ += bytes;
    return blocks_[0].data.get() + aligned;
  }

  void grow(std::size_t at_least) {
    std::size_t size = next_block_bytes_;
    while (size < at_least) size *= 2;
    next_block_bytes_ = size * 2;
    Block block{std::make_unique<std::byte[]>(size), size};
    // The freshest block is the bump target; older blocks just keep their
    // outstanding allocations alive until reset().
    blocks_.insert(blocks_.begin(), std::move(block));
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t offset_ = 0;  ///< bump cursor within blocks_[0]
  std::size_t used_ = 0;
  std::size_t next_block_bytes_;
};

}  // namespace rim::common
