#pragma once

#include <cassert>
#include <optional>
#include <utility>
#include <variant>

/// \file expected.hpp
/// A minimal Expected<T, E>: a value or a typed error, for API surfaces
/// that report failures as data instead of bool-plus-out-parameter or
/// exceptions (the project builds with exceptions available but treats
/// every expected failure — transport loss, service error envelopes,
/// validation — as a value).
///
/// This is the C++23 std::expected shape restricted to what the codebase
/// needs (the toolchain is C++20): construction from T or from
/// Unexpected<E>, has_value()/operator bool, value()/error() accessors,
/// and value_or(). Monadic composition (and_then etc.) is deliberately
/// omitted until a caller needs it.

namespace rim::common {

/// Wrapper marking a constructor argument as the error alternative
/// (mirrors std::unexpected).
template <typename E>
class Unexpected {
 public:
  explicit Unexpected(E error) : error_(std::move(error)) {}
  [[nodiscard]] const E& error() const& { return error_; }
  [[nodiscard]] E&& error() && { return std::move(error_); }

 private:
  E error_;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

template <typename T, typename E>
class Expected {
 public:
  /// Value-constructs T (requires T default-constructible); mirrors
  /// std::expected's default constructor.
  Expected() : storage_(std::in_place_index<0>) {}
  Expected(T value)  // NOLINT(google-explicit-constructor): by design,
                     // `return 42;` must work in an Expected-returning fn
      : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> error)  // NOLINT(google-explicit-constructor)
      : storage_(std::in_place_index<1>, std::move(error).error()) {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] E& error() & {
    assert(!has_value());
    return std::get<1>(storage_);
  }
  [[nodiscard]] const E& error() const& {
    assert(!has_value());
    return std::get<1>(storage_);
  }
  [[nodiscard]] E&& error() && {
    assert(!has_value());
    return std::get<1>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

  [[nodiscard]] const T* operator->() const {
    assert(has_value());
    return &std::get<0>(storage_);
  }
  [[nodiscard]] T* operator->() {
    assert(has_value());
    return &std::get<0>(storage_);
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }

 private:
  std::variant<T, E> storage_;
};

/// The T = void shape: success carries nothing, failure carries E.
template <typename E>
class Expected<void, E> {
 public:
  Expected() = default;
  Expected(Unexpected<E> error)  // NOLINT(google-explicit-constructor)
      : error_(std::in_place, std::move(error).error()) {}

  [[nodiscard]] bool has_value() const { return !error_.has_value(); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const E& error() const& {
    assert(!has_value());
    return *error_;
  }
  [[nodiscard]] E&& error() && {
    assert(!has_value());
    return std::move(*error_);
  }

 private:
  std::optional<E> error_;
};

}  // namespace rim::common
