#pragma once

#include <mutex>

#include "rim/common/thread_annotations.hpp"

/// \file mutex.hpp
/// `std::mutex` wrapped as an annotated capability (DESIGN.md §8).
///
/// libstdc++ ships `std::mutex`/`std::lock_guard` without thread-safety
/// attributes, so clang's analysis treats them as opaque. These two types
/// restore visibility: `Mutex` is the capability, `MutexLock` the scoped
/// acquisition. Condition-variable waits go through `MutexLock::native()`
/// — from the analysis's perspective the capability is held across the
/// wait, the same fiction libc++ uses for `std::condition_variable::wait`.
/// Predicate re-checks therefore belong in an explicit `while` loop in the
/// locking function (where the analysis sees the capability), not in a
/// wait-predicate lambda (which it analyzes as an unlocked function).

namespace rim::common {

class RIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RIM_ACQUIRE() { inner_.lock(); }
  void unlock() RIM_RELEASE() { inner_.unlock(); }
  [[nodiscard]] bool try_lock() RIM_TRY_ACQUIRE(true) {
    return inner_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex inner_;
};

/// RAII lock over a Mutex; holds for its whole lifetime.
class RIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RIM_ACQUIRE(mutex) : lock_(mutex.inner_) {}
  ~MutexLock() RIM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying std::unique_lock, for std::condition_variable::wait.
  /// The capability stays notionally held across the wait (see file
  /// comment); do not unlock() through this handle.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace rim::common
