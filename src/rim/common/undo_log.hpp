#pragma once

#include <cstddef>
#include <type_traits>

#include "rim/common/arena.hpp"

/// \file undo_log.hpp
/// Arena-backed append-only undo log for optimistic execution.
///
/// The speculative batch executor (core::SpeculativeExecutor, DESIGN.md §11)
/// applies region deltas before it knows whether they will survive
/// validation. Every applied effect is first recorded here; when a task is
/// rolled back, the records pushed since its mark are replayed newest-first
/// through an inverting callback, restoring the pre-task state exactly.
///
/// The log is a typed stack over chunked arena storage: push is a bump
/// within the current chunk (one arena allocation per kChunk entries, zero
/// per-entry frees), mark()/unwind() bracket a speculation window, and
/// entries are never destroyed — T must be trivially destructible, the same
/// contract as the arena that backs it. One log belongs to one worker
/// thread (the arena's single-owner rule); cross-worker coordination lives
/// in the executor's footprint index, not here.
namespace rim::common {

template <typename T>
class UndoLog {
  static_assert(std::is_trivially_destructible_v<T>,
                "undo records live in arena memory (no destructors)");

 public:
  /// Entries per arena chunk: big enough to amortise allocation, small
  /// enough that a mostly-idle worker wastes little.
  static constexpr std::size_t kChunk = 64;

  /// \p arena outlives the log and all outstanding records.
  explicit UndoLog(Arena& arena) : arena_(&arena) {}

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  /// Records pushed since construction (monotone until unwind()).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Position marker for a later unwind(): everything pushed after mark()
  /// belongs to the speculation window it opens.
  [[nodiscard]] std::size_t mark() const { return size_; }

  /// Append one record.
  void push(const T& entry) {
    if (head_ == nullptr || head_->count == kChunk) {
      Chunk* chunk = arena_->create<Chunk>();
      chunk->prev = head_;
      head_ = chunk;
    }
    head_->entries[head_->count++] = entry;
    ++size_;
  }

  /// Pop every record down to \p mark, invoking fn(record) newest-first —
  /// the rollback order that makes non-commuting undos correct (the
  /// engine's deltas happen to commute, but the log does not rely on it).
  template <typename Fn>
  void unwind(std::size_t mark, Fn&& fn) {
    while (size_ > mark) {
      --size_;
      fn(head_->entries[--head_->count]);
      if (head_->count == 0) head_ = head_->prev;
    }
  }

  /// Forget everything without replaying (commit). Chunk memory stays with
  /// the arena until its next reset.
  void clear() {
    head_ = nullptr;
    size_ = 0;
  }

 private:
  struct Chunk {
    T entries[kChunk];
    std::size_t count = 0;
    Chunk* prev = nullptr;
  };

  Arena* arena_;
  Chunk* head_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rim::common
