#pragma once

/// \file thread_annotations.hpp
/// Portable Clang thread-safety-analysis attributes (DESIGN.md §8).
///
/// Under clang with `-Wthread-safety` these macros expand to the
/// `capability`-family attributes and the analysis statically proves that
/// every access to a `RIM_GUARDED_BY(mu)` member happens with `mu` held;
/// under every other compiler they expand to nothing. CI builds the tree
/// with `-Werror=thread-safety-analysis`, so the annotations are a checked
/// contract, not documentation.
///
/// libstdc++'s `std::mutex` carries none of these attributes, which makes it
/// invisible to the analysis — use `rim::common::Mutex` / `MutexLock`
/// (mutex.hpp) for lockable state instead of a raw `std::mutex`.
///
/// Attribute reference:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && !defined(SWIG)
#define RIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RIM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability (a lockable resource).
#define RIM_CAPABILITY(name) RIM_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define RIM_SCOPED_CAPABILITY RIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define RIM_GUARDED_BY(x) RIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define RIM_PT_GUARDED_BY(x) RIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability/ies already held.
#define RIM_REQUIRES(...) \
  RIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability/ies held in shared mode.
#define RIM_REQUIRES_SHARED(...) \
  RIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability/ies and holds them on return.
#define RIM_ACQUIRE(...) \
  RIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that acquires the capability/ies in shared mode.
#define RIM_ACQUIRE_SHARED(...) \
  RIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the capability/ies (held on entry).
#define RIM_RELEASE(...) \
  RIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that releases a shared hold of the capability/ies.
#define RIM_RELEASE_SHARED(...) \
  RIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that attempts the acquisition; first argument is the return
/// value that signals success.
#define RIM_TRY_ACQUIRE(...) \
  RIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability/ies held (would
/// self-deadlock a non-recursive mutex).
#define RIM_EXCLUDES(...) RIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define RIM_ASSERT_CAPABILITY(x) \
  RIM_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the given capability.
#define RIM_RETURN_CAPABILITY(x) RIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define RIM_NO_THREAD_SAFETY_ANALYSIS \
  RIM_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Lock-order declarations on a mutex member: RIM_ACQUIRED_AFTER(m) means
/// m is always acquired first, RIM_ACQUIRED_BEFORE(m) the reverse. These
/// expand to NOTHING on every compiler — clang's acquired_after/
/// acquired_before attributes are unimplemented (the analysis ignores
/// them), and cross-class arguments (SessionManager::mutex_ on a Session
/// member) would not even name-resolve under the attribute grammar. They
/// exist for `rim_lint --project`, whose lock-order pass parses them into
/// the declared partial order (DESIGN.md §9, §13) and flags inverted
/// acquisition sequences.
#define RIM_ACQUIRED_AFTER(...)
#define RIM_ACQUIRED_BEFORE(...)
