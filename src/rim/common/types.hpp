#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier types shared by every rim subsystem.

namespace rim {

/// Index of a network node. Node sets are dense: a deployment of n nodes
/// uses ids 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Index of an undirected edge inside a Graph's edge list.
using EdgeId = std::uint32_t;

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace rim
