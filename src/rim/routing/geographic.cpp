#include "rim/routing/geographic.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <set>

#include "rim/graph/connectivity.hpp"
#include "rim/sim/rng.hpp"

namespace rim::routing {

namespace {

/// Greedy next hop: the neighbor strictly closer to target than u, closest
/// first; kInvalidNode at a local minimum.
NodeId greedy_next(std::span<const geom::Vec2> points, const graph::Graph& g,
                   NodeId u, NodeId target) {
  const double here = geom::dist2(points[u], points[target]);
  NodeId best = kInvalidNode;
  double best_d2 = here;
  for (NodeId v : g.neighbors(u)) {
    const double d2 = geom::dist2(points[v], points[target]);
    if (d2 < best_d2 || (d2 == best_d2 && best != kInvalidNode && v < best)) {
      best_d2 = d2;
      best = v;
    }
  }
  return best_d2 < here ? best : kInvalidNode;
}

/// Counterclockwise angle from direction `ref` to direction `dir`,
/// in (0, 2π].
double ccw_angle(geom::Vec2 ref, geom::Vec2 dir) {
  const double a = std::atan2(dir.y, dir.x) - std::atan2(ref.y, ref.x);
  double wrapped = std::fmod(a, 2.0 * std::numbers::pi);
  if (wrapped <= 0.0) wrapped += 2.0 * std::numbers::pi;
  return wrapped;
}

/// Right-hand rule: the neighbor whose direction is first counterclockwise
/// from the reference direction.
NodeId rhr_next(std::span<const geom::Vec2> points, const graph::Graph& g,
                NodeId u, geom::Vec2 ref) {
  NodeId best = kInvalidNode;
  double best_angle = std::numeric_limits<double>::infinity();
  for (NodeId v : g.neighbors(u)) {
    const geom::Vec2 dir = points[v] - points[u];
    // RIM_LINT_ALLOW(float-equality): exact zero-vector test for coincident
    // points; any nonzero component, however tiny, defines an angle.
    if (dir.x == 0.0 && dir.y == 0.0) continue;
    const double angle = ccw_angle(ref, dir);
    if (angle < best_angle || (angle == best_angle && v < best)) {
      best_angle = angle;
      best = v;
    }
  }
  return best;
}

std::size_t default_budget(const graph::Graph& g, std::size_t max_hops) {
  // A perimeter traversal can visit every directed edge once.
  return max_hops != 0 ? max_hops : 4 * g.edge_count() + g.node_count() + 16;
}

}  // namespace

RouteResult greedy_route(std::span<const geom::Vec2> points,
                         const graph::Graph& topology, NodeId source,
                         NodeId target, std::size_t max_hops) {
  assert(source < points.size() && target < points.size());
  RouteResult result;
  result.path.push_back(source);
  const std::size_t budget = default_budget(topology, max_hops);
  NodeId u = source;
  while (u != target && result.path.size() <= budget) {
    const NodeId next = greedy_next(points, topology, u, target);
    if (next == kInvalidNode) {
      result.stuck_at = u;
      return result;
    }
    result.path.push_back(next);
    ++result.greedy_hops;
    u = next;
  }
  result.delivered = u == target;
  return result;
}

RouteResult gfg_route(std::span<const geom::Vec2> points,
                      const graph::Graph& topology, NodeId source, NodeId target,
                      std::size_t max_hops) {
  assert(source < points.size() && target < points.size());
  RouteResult result;
  result.path.push_back(source);
  const std::size_t budget = default_budget(topology, max_hops);

  NodeId u = source;
  bool perimeter = false;
  double entry_d2 = 0.0;   // distance² to target where perimeter mode began
  NodeId prev = kInvalidNode;
  // First directed perimeter edge of the current recovery phase, for loop
  // detection: traversing it twice means the target is unreachable.
  std::pair<NodeId, NodeId> first_edge{kInvalidNode, kInvalidNode};
  bool first_edge_armed = false;

  while (u != target) {
    if (result.path.size() > budget) return result;  // budget exhausted
    if (!perimeter) {
      const NodeId next = greedy_next(points, topology, u, target);
      if (next != kInvalidNode) {
        result.path.push_back(next);
        ++result.greedy_hops;
        u = next;
        continue;
      }
      // Local minimum: enter perimeter mode (GPSR: first edge
      // counterclockwise about u from the line (u, target)).
      result.stuck_at = result.stuck_at == kInvalidNode ? u : result.stuck_at;
      perimeter = true;
      entry_d2 = geom::dist2(points[u], points[target]);
      const NodeId next_p =
          rhr_next(points, topology, u, points[target] - points[u]);
      if (next_p == kInvalidNode) return result;  // isolated node
      first_edge = {u, next_p};
      first_edge_armed = false;  // arm after leaving it once
      prev = u;
      result.path.push_back(next_p);
      ++result.perimeter_hops;
      u = next_p;
      continue;
    }
    // Perimeter mode: return to greedy on progress past the entry point.
    if (geom::dist2(points[u], points[target]) < entry_d2) {
      perimeter = false;
      prev = kInvalidNode;
      continue;
    }
    const NodeId next =
        rhr_next(points, topology, u, points[prev] - points[u]);
    if (next == kInvalidNode) return result;
    if (first_edge_armed && std::pair{u, next} == first_edge) {
      return result;  // full face loop without progress: unreachable
    }
    first_edge_armed = true;
    prev = u;
    result.path.push_back(next);
    ++result.perimeter_hops;
    u = next;
  }
  result.delivered = true;
  return result;
}

RoutingReport evaluate_routing(std::span<const geom::Vec2> points,
                               const graph::Graph& topology, std::size_t pairs,
                               std::uint64_t seed) {
  RoutingReport report;
  if (points.size() < 2) return report;
  const auto labels = graph::component_labels(topology);
  sim::Rng rng(seed);
  double hop_stretch_sum = 0.0;
  double euclid_stretch_sum = 0.0;
  std::size_t delivered = 0;
  for (std::size_t trial = 0; trial < pairs; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.next_below(points.size()));
    NodeId t = static_cast<NodeId>(rng.next_below(points.size()));
    if (s == t || labels[s] != labels[t]) continue;  // skip unconnected draws
    ++report.attempted;
    const RouteResult r = gfg_route(points, topology, s, t);
    if (!r.delivered) continue;
    ++delivered;
    const auto hops = graph::bfs_hops(topology, s);
    hop_stretch_sum += static_cast<double>(r.hops()) /
                       static_cast<double>(std::max<std::uint32_t>(hops[t], 1));
    double length = 0.0;
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      length += geom::dist(points[r.path[i - 1]], points[r.path[i]]);
    }
    const double straight = geom::dist(points[s], points[t]);
    euclid_stretch_sum += straight > 0.0 ? length / straight : 1.0;
  }
  if (report.attempted > 0) {
    report.success_rate = static_cast<double>(delivered) /
                          static_cast<double>(report.attempted);
  }
  if (delivered > 0) {
    report.mean_hop_stretch = hop_stretch_sum / static_cast<double>(delivered);
    report.mean_euclid_stretch =
        euclid_stretch_sum / static_cast<double>(delivered);
  }
  return report;
}

}  // namespace rim::routing
