#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file geographic.hpp
/// Geographic (position-based) routing over a topology: greedy forwarding
/// and GPSR-style greedy+perimeter recovery (Karp & Kung, MOBICOM 2000;
/// Bose et al., DIALM 1999 — both cited by the paper's related work).
///
/// Role in the library: topology control trades interference against path
/// quality; these routers measure that trade on the actual forwarding
/// plane. Perimeter recovery requires a planar topology (use the Gabriel
/// graph or the RNG).

namespace rim::routing {

struct RouteResult {
  bool delivered = false;
  std::vector<NodeId> path;        ///< visited nodes, starting at the source
  std::size_t greedy_hops = 0;
  std::size_t perimeter_hops = 0;
  NodeId stuck_at = kInvalidNode;  ///< local minimum (greedy failure), if any

  [[nodiscard]] std::size_t hops() const {
    return path.empty() ? 0 : path.size() - 1;
  }
};

/// Pure greedy forwarding: each hop moves to the neighbor strictly closest
/// to the destination; fails at a local minimum (a void).
[[nodiscard]] RouteResult greedy_route(std::span<const geom::Vec2> points,
                                       const graph::Graph& topology, NodeId source,
                                       NodeId target, std::size_t max_hops = 0);

/// GPSR-style greedy forwarding with right-hand-rule perimeter recovery on
/// a planar \p topology. Returns to greedy as soon as a node closer to the
/// target than the recovery entry point is reached; detects perimeter
/// loops (undeliverable) and hop-budget exhaustion.
[[nodiscard]] RouteResult gfg_route(std::span<const geom::Vec2> points,
                                    const graph::Graph& topology, NodeId source,
                                    NodeId target, std::size_t max_hops = 0);

/// Aggregate routing quality over sampled source/target pairs.
struct RoutingReport {
  double success_rate = 0.0;        ///< delivered / attempted
  double mean_hop_stretch = 0.0;    ///< hops / BFS-optimal hops, delivered pairs
  double mean_euclid_stretch = 0.0; ///< path length / straight-line distance
  std::size_t attempted = 0;
};

/// Route \p pairs random connected pairs with gfg_route and summarise.
[[nodiscard]] RoutingReport evaluate_routing(std::span<const geom::Vec2> points,
                                             const graph::Graph& topology,
                                             std::size_t pairs,
                                             std::uint64_t seed);

}  // namespace rim::routing
