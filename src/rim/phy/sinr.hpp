#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file sinr.hpp
/// The physical (SINR) interference model, as a reality-check substrate for
/// the paper's protocol-model measure.
///
/// The paper defines interference combinatorially (disks). Later literature
/// (Moscibroda et al.) argues the physical model is the ground truth: node
/// u transmitting with power P_u is decoded at v iff
///
///   SINR = (P_u / d(u,v)^alpha) / (noise + Σ_{w != u} P_w / d(w,v)^alpha)
///        >= beta.
///
/// Here every node's power is set exactly as the paper's model prescribes —
/// just enough to reach its farthest topology neighbor with margin:
/// P_u = beta * noise * margin * r_u^alpha. Experiment E16 then measures
/// how well the disk-based measure predicts SINR-feasible concurrency.

namespace rim::phy {

struct SinrParams {
  double alpha = 3.0;    ///< path-loss exponent
  double beta = 2.0;     ///< decoding threshold
  double noise = 1e-4;   ///< ambient noise power
  double margin = 2.0;   ///< link budget margin over the noise-only minimum
};

class SinrModel {
 public:
  /// Build from a topology: per-node powers derive from the transmission
  /// radii (farthest-neighbor rule). Nodes without neighbors get power 0.
  SinrModel(const graph::Graph& topology, std::span<const geom::Vec2> points,
            SinrParams params = {});

  [[nodiscard]] std::size_t node_count() const { return powers_.size(); }
  [[nodiscard]] const SinrParams& params() const { return params_; }
  [[nodiscard]] double power(NodeId u) const { return powers_[u]; }

  /// Received signal power of u's transmission at position of v
  /// (coincident nodes clamp the distance to a small epsilon).
  [[nodiscard]] double received_power(NodeId u, NodeId v) const;

  /// SINR of link u -> v under concurrent transmitter flags (u must be
  /// transmitting; v's own transmission is NOT excluded — half duplex is
  /// the scheduler's concern).
  [[nodiscard]] double sinr(NodeId u, NodeId v,
                            std::span<const std::uint8_t> transmitting) const;

  /// Whether u -> v decodes under the given transmitter set: transmitting,
  /// half-duplex respected, SINR >= beta.
  [[nodiscard]] bool link_feasible(NodeId u, NodeId v,
                                   std::span<const std::uint8_t> transmitting) const;

 private:
  std::span<const geom::Vec2> points_;
  SinrParams params_;
  std::vector<double> powers_;
};

}  // namespace rim::phy
