#include "rim/phy/scheduling.hpp"

#include <algorithm>

#include "rim/core/radii.hpp"
#include "rim/mac/medium.hpp"

namespace rim::phy {

std::size_t Schedule::scheduled_links() const {
  std::size_t count = 0;
  for (const auto& slot : slots) count += slot.size();
  return count;
}

namespace {

/// Disk-model conflict between directed links a.u->a.v and b.u->b.v.
bool disk_conflict(graph::Edge a, graph::Edge b, const mac::Medium& medium) {
  // Shared endpoint: a radio cannot do two things per slot.
  if (a.u == b.u || a.u == b.v || a.v == b.u || a.v == b.v) return true;
  // Cross coverage: b's transmitter disturbs a's receiver or vice versa.
  return medium.covers(b.u, a.v) || medium.covers(a.u, b.v);
}

}  // namespace

Schedule schedule_links_disk(const graph::Graph& topology,
                             std::span<const geom::Vec2> points) {
  const mac::Medium medium(topology, points);
  Schedule schedule;
  for (graph::Edge e : topology.edges()) {
    bool placed = false;
    for (auto& slot : schedule.slots) {
      bool conflict = false;
      for (graph::Edge other : slot) {
        if (disk_conflict(e, other, medium)) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        slot.push_back(e);
        placed = true;
        break;
      }
    }
    if (!placed) schedule.slots.push_back({e});
  }
  return schedule;
}

Schedule schedule_links_sinr(const graph::Graph& topology,
                             std::span<const geom::Vec2> points,
                             SinrParams params) {
  const SinrModel model(topology, points, params);
  Schedule schedule;
  std::vector<std::uint8_t> transmitting(points.size(), 0);

  for (graph::Edge e : topology.edges()) {
    bool placed = false;
    for (auto& slot : schedule.slots) {
      // Tentatively activate this slot's transmitters plus e.u.
      std::fill(transmitting.begin(), transmitting.end(), 0);
      bool endpoint_clash = false;
      for (graph::Edge other : slot) {
        transmitting[other.u] = 1;
        if (other.u == e.u || other.u == e.v || other.v == e.u ||
            other.v == e.v) {
          endpoint_clash = true;
        }
      }
      if (endpoint_clash) continue;
      transmitting[e.u] = 1;
      bool feasible = model.link_feasible(e.u, e.v, transmitting);
      for (graph::Edge other : slot) {
        if (!feasible) break;
        feasible = model.link_feasible(other.u, other.v, transmitting);
      }
      if (feasible) {
        slot.push_back(e);
        placed = true;
        break;
      }
    }
    if (!placed) schedule.slots.push_back({e});
  }
  return schedule;
}

bool schedule_valid_disk(const Schedule& schedule, const graph::Graph& topology,
                         std::span<const geom::Vec2> points) {
  // Exactly the edge set, once each.
  std::vector<graph::Edge> scheduled;
  for (const auto& slot : schedule.slots) {
    scheduled.insert(scheduled.end(), slot.begin(), slot.end());
  }
  std::vector<graph::Edge> expected(topology.edges().begin(),
                                    topology.edges().end());
  std::sort(scheduled.begin(), scheduled.end());
  std::sort(expected.begin(), expected.end());
  if (scheduled != expected) return false;

  const mac::Medium medium(topology, points);
  for (const auto& slot : schedule.slots) {
    for (std::size_t i = 0; i < slot.size(); ++i) {
      for (std::size_t j = i + 1; j < slot.size(); ++j) {
        if (disk_conflict(slot[i], slot[j], medium)) return false;
      }
    }
  }
  return true;
}

}  // namespace rim::phy
