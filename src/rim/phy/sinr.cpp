#include "rim/phy/sinr.hpp"

#include <cassert>
#include <cmath>

#include "rim/core/radii.hpp"

namespace rim::phy {

namespace {

constexpr double kMinDistance = 1e-9;  // clamp for coincident nodes

double path_gain(geom::Vec2 a, geom::Vec2 b, double alpha) {
  const double d = std::max(geom::dist(a, b), kMinDistance);
  return std::pow(d, -alpha);
}

}  // namespace

SinrModel::SinrModel(const graph::Graph& topology,
                     std::span<const geom::Vec2> points, SinrParams params)
    : points_(points), params_(params), powers_(points.size(), 0.0) {
  const std::vector<double> radii = core::transmission_radii(topology, points);
  for (NodeId u = 0; u < points.size(); ++u) {
    if (radii[u] <= 0.0) continue;
    // Noise-only decoding at distance r needs P >= beta * noise * r^alpha;
    // the margin keeps isolated links feasible under light interference.
    powers_[u] = params_.beta * params_.noise * params_.margin *
                 std::pow(std::max(radii[u], kMinDistance), params_.alpha);
  }
}

double SinrModel::received_power(NodeId u, NodeId v) const {
  return powers_[u] * path_gain(points_[u], points_[v], params_.alpha);
}

double SinrModel::sinr(NodeId u, NodeId v,
                       std::span<const std::uint8_t> transmitting) const {
  assert(transmitting.size() == powers_.size());
  assert(u != v);
  double interference = 0.0;
  for (NodeId w = 0; w < powers_.size(); ++w) {
    if (w == u || !transmitting[w] || powers_[w] <= 0.0) continue;
    interference += received_power(w, v);
  }
  return received_power(u, v) / (params_.noise + interference);
}

bool SinrModel::link_feasible(NodeId u, NodeId v,
                              std::span<const std::uint8_t> transmitting) const {
  if (!transmitting[u]) return false;
  if (transmitting[v]) return false;  // half duplex
  return sinr(u, v, transmitting) >= params_.beta;
}

}  // namespace rim::phy
