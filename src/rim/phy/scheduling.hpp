#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"
#include "rim/phy/sinr.hpp"

/// \file scheduling.hpp
/// One-shot link scheduling: partition a topology's links into the minimum
/// number of conflict-free slots (greedily), under either the paper's disk
/// model or the physical SINR model.
///
/// The resulting frame length is the congestion notion of Meyer auf de
/// Heide et al. (SPAA 2002), the paper's reference [11]: a topology where
/// every node suffers interference I needs Ω(I)-ish slots to activate all
/// its links, so frame length is the throughput-side shadow of the paper's
/// measure — experiment E16 quantifies the correlation.

namespace rim::phy {

struct Schedule {
  /// slots[k] holds the links (directed e.u -> e.v) fired in slot k.
  std::vector<std::vector<graph::Edge>> slots;

  [[nodiscard]] std::size_t length() const { return slots.size(); }
  [[nodiscard]] std::size_t scheduled_links() const;
};

/// Disk-model conflicts: two links conflict when they share an endpoint or
/// when one transmitter's disk (farthest-neighbor radius) covers the other
/// link's receiver. Greedy first-fit over edges in canonical order.
[[nodiscard]] Schedule schedule_links_disk(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points);

/// SINR-model scheduling: greedily pack links into a slot while every
/// member link of the slot still decodes (cumulative interference checked
/// exactly). Links that cannot decode even alone are given solo slots, so
/// every link is scheduled.
[[nodiscard]] Schedule schedule_links_sinr(const graph::Graph& topology,
                                           std::span<const geom::Vec2> points,
                                           SinrParams params = {});

/// Validity check for tests: every topology edge appears exactly once and
/// every slot is conflict-free under the respective model.
[[nodiscard]] bool schedule_valid_disk(const Schedule& schedule,
                                       const graph::Graph& topology,
                                       std::span<const geom::Vec2> points);

}  // namespace rim::phy
