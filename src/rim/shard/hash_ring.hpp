#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

/// \file hash_ring.hpp
/// Consistent-hash ring for session→backend placement (DESIGN.md §14).
///
/// Each member (a backend name) is hashed onto the 64-bit ring at `vnodes`
/// virtual points; a session key owns the first point clockwise from its
/// own hash. Virtual points give the two properties the router needs:
///
///  - **Stability**: adding or removing one member of N moves ~1/N of the
///    key space, never the whole table (tests/shard_ring_test.cpp pins a
///    bound). Sessions that do not move keep their backend — no churn.
///  - **Determinism**: placement is a pure function of the member set and
///    the key. Points are FNV-1a hashes passed through a splitmix64
///    finalizer (FNV alone disperses short names too poorly for balanced
///    arcs; lookup keys get the same mix); a (vanishingly rare) point
///    collision is resolved toward the lexicographically smaller member,
///    so the ring is identical regardless of insertion order. Two router
///    processes configured with the same backends route identically.
///
/// The ring is a plain value type: the router guards it with its own
/// ring_mutex_ (router.hpp), so there is no locking here.

namespace rim::shard {

/// FNV-1a over a byte string (the ring's one hash; also used for session
/// keys so placement is reproducible across processes).
[[nodiscard]] std::uint64_t fnv1a_bytes(std::string_view bytes);

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  /// Add a member (no-op when present). O(members × vnodes) rebuild —
  /// membership changes are rare control-plane events.
  void add(const std::string& member);

  /// Remove a member (no-op when absent).
  void remove(const std::string& member);

  [[nodiscard]] bool contains(const std::string& member) const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] const std::set<std::string>& members() const {
    return members_;
  }

  /// The member owning \p key, skipping members in \p down. Empty when no
  /// live member exists.
  [[nodiscard]] std::string owner(std::uint64_t key,
                                  const std::set<std::string>& down = {})
      const;

  /// The first live member clockwise after \p key's owner that is distinct
  /// from it — the designated replica peer. Empty when fewer than two live
  /// members exist.
  [[nodiscard]] std::string peer(std::uint64_t key,
                                 const std::set<std::string>& down = {})
      const;

 private:
  void rebuild();

  std::size_t vnodes_;
  std::set<std::string> members_;
  /// ring point → member; std::map keeps the walk order deterministic.
  std::map<std::uint64_t, std::string> points_;
};

}  // namespace rim::shard
