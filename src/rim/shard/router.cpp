#include "rim/shard/router.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "rim/svc/protocol.hpp"

namespace rim::shard {

namespace {

/// Commands whose acked application changes session state — exactly the
/// set the Replicator must journal for the failover replay to reconstruct
/// acked state (svc/service.cpp's mutation surface).
bool is_mutating(const std::string& command) {
  return command == svc::cmd::kAddNode || command == svc::cmd::kRemoveNode ||
         command == svc::cmd::kAddEdge || command == svc::cmd::kRemoveEdge ||
         command == svc::cmd::kMove || command == svc::cmd::kApplyBatch ||
         command == svc::cmd::kRestore;
}

/// The session-scoped command set the backends accept — kept in lockstep
/// with Service::dispatch_session_command so the router's unknown-command
/// envelope is byte-identical to a direct service's.
bool is_session_command(const std::string& command) {
  return is_mutating(command) || command == svc::cmd::kAssess ||
         command == svc::cmd::kQueryInterference ||
         command == svc::cmd::kSnapshot ||
         command == svc::cmd::kSessionStats;
}

std::vector<std::unique_ptr<Backend>> make_backends(
    const RouterConfig& config) {
  std::vector<std::unique_ptr<Backend>> backends;
  backends.reserve(config.backends.size());
  for (const BackendEndpoint& endpoint : config.backends) {
    backends.push_back(std::make_unique<Backend>(
        endpoint.name, endpoint.connect, endpoint.probe_connect,
        config.health_backoff));
  }
  return backends;
}

std::string backend_source_name(const std::string& backend) {
  return "shard.backend." + backend;
}

/// True iff \p response parses as an envelope with ok:true. The
/// journaling predicate (which mutations enter the failover replay
/// script) must parse the envelope rather than substring-match it, or
/// the replay contract would silently rot with serializer layout.
bool response_is_ok(const std::string& response) {
  io::Json document;
  std::string error;
  if (!io::Json::parse(response, document, error)) return false;
  const io::Json* ok = document.find("ok");
  return ok != nullptr && ok->as_bool(false);
}

}  // namespace

const char* backend_state_name(BackendState state) {
  switch (state) {
    case BackendState::kUp:
      return "up";
    case BackendState::kSuspect:
      return "suspect";
    case BackendState::kDown:
      return "down";
  }
  return "down";
}

io::Json RouterCounters::to_json() const {
  io::JsonObject object;
  object["errors"] = errors.to_json();
  object["failovers"] = failovers.to_json();
  object["forward_failures"] = forward_failures.to_json();
  object["handle_ns"] = handle_ns.to_json();
  object["latency_ns"] = latency_ns.to_json();
  object["lost_sessions"] = lost_sessions.to_json();
  object["ok"] = ok.to_json();
  object["rejected_bad_frame"] = rejected_bad_frame.to_json();
  object["rejected_overloaded"] = rejected_overloaded.to_json();
  object["requests"] = requests.to_json();
  object["routed"] = routed.to_json();
  object["sessions_moved"] = sessions_moved.to_json();
  return io::Json(std::move(object));
}

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      backends_(make_backends(config_)),
      replicator_(config_.replication),
      exchange_([this](const std::string& backend, const std::string& payload,
                       std::string& response) {
        Backend* target = backend_by_name(backend);
        if (target == nullptr) return svc::TransportStatus::kConnectionLost;
        return exchange_with(*target, payload, response);
      }) {
  {
    common::MutexLock lock(ring_mutex_);
    ring_ = HashRing(config_.vnodes);
    for (const std::unique_ptr<Backend>& backend : backends_) {
      ring_.add(backend->name);
    }
  }
  registry_.add_source("shard.router", [this] {
    io::JsonObject object;
    object["backends"] = io::Json(backends_.size());
    object["counters"] = counters_.to_json();
    object["in_flight"] =
        io::Json(in_flight_.load(std::memory_order_relaxed));
    object["replication"] = replicator_.counters().to_json();
    object["sessions"] = io::Json(session_count());
    return io::Json(std::move(object));
  });
  for (const std::unique_ptr<Backend>& backend : backends_) {
    Backend* raw = backend.get();
    registry_.add_source(backend_source_name(raw->name), [raw] {
      io::JsonObject object;
      object["failed"] = raw->failed.to_json();
      object["routed"] = raw->routed.to_json();
      object["state"] = io::Json(std::string(
          backend_state_name(raw->state.load(std::memory_order_acquire))));
      return io::Json(std::move(object));
    });
  }
}

Router::~Router() {
  stop();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    registry_.remove_source(backend_source_name(backend->name));
  }
  registry_.remove_source("shard.router");
}

Router::Ticket Router::try_admit() {
  const std::size_t previous =
      in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (previous >= config_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return Ticket();
  }
  return Ticket(this);
}

std::string Router::overloaded_response(std::string_view payload) {
  ++counters_.requests;
  ++counters_.errors;
  ++counters_.rejected_overloaded;
  return svc::make_error(svc::peek_request_id(payload), svc::code::kOverloaded,
                         "service at max in-flight requests (" +
                             std::to_string(config_.max_in_flight) +
                             "); retry later");
}

std::string Router::handle_admitted(std::string_view payload) {
  const obs::ScopedTimer timer(counters_.handle_ns, &counters_.latency_ns);
  ++counters_.requests;
  return dispatch(payload);
}

std::string Router::dispatch(std::string_view payload) {
  io::Json request;
  std::string error;
  if (!io::Json::parse(payload, request, error)) {
    ++counters_.errors;
    ++counters_.rejected_bad_frame;
    return svc::make_error(0, svc::code::kBadFrame, error);
  }
  if (!request.is_object()) {
    ++counters_.errors;
    return svc::make_error(0, svc::code::kBadRequest,
                           "request must be a JSON object");
  }
  std::uint64_t id = 0;
  const io::Json* id_field = request.find("id");
  if (id_field != nullptr) {
    (void)svc::json_to_u64(*id_field,
                           std::numeric_limits<std::uint64_t>::max(), id);
  }
  const io::Json* cmd_field = request.find("cmd");
  const std::string* command =
      cmd_field != nullptr ? cmd_field->as_string() : nullptr;
  if (command == nullptr) {
    ++counters_.errors;
    return svc::make_error(id, svc::code::kBadRequest,
                           "field 'cmd' must be a command name string");
  }
  std::string response = dispatch_command(id, *command, request);
  if (response.find("\"ok\":true") != std::string::npos) {
    ++counters_.ok;
  } else {
    ++counters_.errors;
  }
  return response;
}

std::string Router::dispatch_command(std::uint64_t id,
                                     const std::string& command,
                                     const io::Json& request) {
  if (command == svc::cmd::kPing) {
    io::JsonObject result;
    result["pong"] = io::Json(true);
    return svc::make_ok(id, io::Json(std::move(result)));
  }
  if (command == svc::cmd::kMetrics) {
    return svc::make_ok(id, registry_.snapshot());
  }
  if (command == svc::cmd::kShardStatus) {
    return shard_status(id);
  }
  if (command == svc::cmd::kShutdown) {
    if (!config_.allow_shutdown) {
      return svc::make_error(id, svc::code::kShutdownDisabled,
                             "this service does not accept shutdown requests");
    }
    request_shutdown();
    io::JsonObject result;
    result["shutting_down"] = io::Json(true);
    return svc::make_ok(id, io::Json(std::move(result)));
  }
  if (command == svc::cmd::kCreateSession) {
    return create_session(id);
  }
  if (command == svc::cmd::kCloseSession) {
    return close_session(id, request);
  }
  if (command == svc::cmd::kReplicateSession ||
      command == svc::cmd::kAdoptSession ||
      command == svc::cmd::kDropReplica) {
    // Replica placement is the router's job; accepting these from clients
    // would let them corrupt the failover bookkeeping.
    return svc::make_error(
        id, svc::code::kBadRequest,
        "replication commands are internal to the shard tier");
  }
  return route_session_command(id, command, request);
}

std::string Router::create_session(std::uint64_t id) {
  std::shared_ptr<SessionEntry> entry = allocate_entry();
  std::string response;
  bool failed = false;
  {
    common::MutexLock entry_lock(entry->entry_mutex);
    for (std::size_t attempt = 0; attempt < backends_.size(); ++attempt) {
      const std::string owner = pick_owner(entry->id);
      if (owner.empty()) break;
      Backend* backend = backend_by_name(owner);
      if (backend == nullptr) break;
      io::JsonObject create;
      create["cmd"] = io::Json(svc::cmd::kCreateSession);
      create["id"] = io::Json(id);
      std::string backend_response;
      const svc::TransportStatus status = exchange_with(
          *backend, io::Json(std::move(create)).dump(), backend_response);
      if (status == svc::TransportStatus::kConnectionLost) {
        continue;  // the backend was declared down; the ring re-picks
      }
      if (status != svc::TransportStatus::kOk) break;
      io::Json document;
      std::string error;
      const io::Json* session_field = nullptr;
      if (io::Json::parse(backend_response, document, error)) {
        const io::Json* ok = document.find("ok");
        if (ok != nullptr && ok->as_bool(false)) {
          const io::Json* result = document.find("result");
          session_field =
              result != nullptr ? result->find("session") : nullptr;
        } else {
          // Backend-side refusal (overloaded, at session cap): the
          // envelope already says why — pass it through verbatim.
          response = std::move(backend_response);
          failed = true;
          break;
        }
      }
      std::uint64_t backend_session = 0;
      if (session_field == nullptr ||
          !svc::json_to_u64(*session_field,
                            std::numeric_limits<std::uint64_t>::max(),
                            backend_session)) {
        response = svc::make_error(id, svc::code::kInternal,
                                   "backend '" + owner +
                                       "' returned no session id");
        failed = true;
        break;
      }
      entry->owner = owner;
      entry->backend_session = backend_session;
      io::JsonObject result;
      result["session"] = io::Json(entry->id);
      response = svc::make_ok(id, io::Json(std::move(result)));
      break;
    }
    if (response.empty()) {
      response = svc::make_error(id, svc::code::kConnectionLost,
                                 "no live backend to create a session");
      failed = true;
    }
  }
  if (failed) erase_entry(entry->id);
  return response;
}

std::string Router::close_session(std::uint64_t id, const io::Json& request) {
  const io::Json* session_field = request.find("session");
  std::uint64_t session_id = 0;
  if (session_field == nullptr ||
      !svc::json_to_u64(*session_field,
                        std::numeric_limits<std::uint64_t>::max(),
                        session_id)) {
    return svc::make_error(id, svc::code::kBadRequest,
                           "field 'session' must be an integer session id");
  }
  const std::shared_ptr<SessionEntry> entry = find_entry(session_id);
  if (entry == nullptr) {
    return svc::make_error(id, svc::code::kNoSession,
                           "no session " + std::to_string(session_id));
  }
  std::string response;
  {
    common::MutexLock lock(entry->entry_mutex);
    Backend* owner = backend_by_name(entry->owner);
    if (!entry->lost && owner != nullptr &&
        owner->state.load(std::memory_order_acquire) != BackendState::kDown) {
      io::JsonObject close;
      close["cmd"] = io::Json(svc::cmd::kCloseSession);
      close["id"] = io::Json(id);
      close["session"] = io::Json(entry->backend_session);
      std::string backend_response;
      if (exchange_with(*owner, io::Json(std::move(close)).dump(),
                        backend_response) == svc::TransportStatus::kOk) {
        response = std::move(backend_response);
      }
    }
    if (entry->repl.has_replica) {
      // Best effort: a dangling replica is harmless (bounded by the
      // store's capacity) and a later replicate for the same origin
      // would supersede it anyway.
      io::JsonObject drop;
      drop["cmd"] = io::Json(svc::cmd::kDropReplica);
      drop["id"] = io::Json(std::uint64_t{0});
      drop["origin"] = io::Json(entry->id);
      Backend* peer = backend_by_name(entry->repl.peer);
      if (peer != nullptr) {
        std::string drop_response;
        (void)exchange_with(*peer, io::Json(std::move(drop)).dump(),
                            drop_response);
      }
    }
    if (response.empty()) {
      // The owner is gone: discarding the routing entry and replica IS
      // the close — answer exactly what a direct service would.
      io::JsonObject result;
      result["closed"] = io::Json(true);
      response = svc::make_ok(id, io::Json(std::move(result)));
    }
  }
  erase_entry(session_id);
  return response;
}

std::string Router::route_session_command(std::uint64_t id,
                                          const std::string& command,
                                          const io::Json& request) {
  if (!is_session_command(command)) {
    return svc::make_error(id, svc::code::kUnknownCommand,
                           "unknown command '" + command + "'");
  }
  const io::Json* session_field = request.find("session");
  std::uint64_t session_id = 0;
  if (session_field == nullptr ||
      !svc::json_to_u64(*session_field,
                        std::numeric_limits<std::uint64_t>::max(),
                        session_id)) {
    return svc::make_error(id, svc::code::kBadRequest,
                           "field 'session' must be an integer session id");
  }
  const std::shared_ptr<SessionEntry> entry = find_entry(session_id);
  if (entry == nullptr) {
    return svc::make_error(id, svc::code::kNoSession,
                           "no session " + std::to_string(session_id));
  }
  common::MutexLock lock(entry->entry_mutex);
  if (entry->lost) {
    return svc::make_error(
        id, svc::code::kConnectionLost,
        "session " + std::to_string(session_id) + " was lost in a failover");
  }
  return forward_locked(*entry, id, command, request);
}

std::string Router::forward_locked(SessionEntry& entry, std::uint64_t id,
                                   const std::string& command,
                                   const io::Json& request) {
  std::string error;
  {
    Backend* owner = backend_by_name(entry.owner);
    if (owner == nullptr ||
        owner->state.load(std::memory_order_acquire) == BackendState::kDown) {
      if (!failover_locked(entry, error)) {
        ++counters_.forward_failures;
        return svc::make_error(id, svc::code::kConnectionLost,
                               "session " + std::to_string(entry.id) +
                                   " unrecoverable: " + error);
      }
    }
  }
  // One attempt per backend plus the original: every lost attempt marks a
  // backend down and fails the session over, so the loop strictly
  // shrinks the candidate set.
  const std::size_t max_attempts = backends_.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Backend* backend = backend_by_name(entry.owner);
    if (backend == nullptr) break;
    io::JsonObject forward = *request.as_object();
    forward["session"] = io::Json(entry.backend_session);
    const std::string payload = io::Json(std::move(forward)).dump();
    std::string response;
    const svc::TransportStatus status =
        exchange_with(*backend, payload, response);
    if (status == svc::TransportStatus::kOk) {
      if (is_mutating(command) && response_is_ok(response) &&
          replicator_.record_mutation(entry.repl, payload, obs::now_ns())) {
        const std::string peer = pick_peer_for(entry.id, entry.owner);
        if (!peer.empty()) {
          // A failed ship keeps the journal; the next acked mutation
          // retries. With no live peer (single surviving backend) the
          // journal simply accumulates.
          (void)replicator_.ship(entry.id, entry.owner,
                                 entry.backend_session, peer, exchange_,
                                 entry.repl, obs::now_ns());
        }
      }
      return response;
    }
    if (status == svc::TransportStatus::kError) {
      ++counters_.forward_failures;
      ++counters_.routed;  // accounted as routed-and-failed, not retried
      return svc::make_error(
          id, svc::code::kInternal,
          "exchange with backend '" + backend->name + "' failed");
    }
    // Connection lost: exchange_with declared the backend down. The
    // torn command was never journaled (only acked ones are), so after
    // the failover below re-forwarding it applies it exactly once.
    if (!failover_locked(entry, error)) {
      ++counters_.forward_failures;
      return svc::make_error(id, svc::code::kConnectionLost,
                             "session " + std::to_string(entry.id) +
                                 " unrecoverable: " + error);
    }
  }
  ++counters_.forward_failures;
  return svc::make_error(
      id, svc::code::kConnectionLost,
      "no live backend for session " + std::to_string(entry.id));
}

bool Router::failover_locked(SessionEntry& entry, std::string& error) {
  if (entry.repl.truncated) {
    // The journal shed acked mutations past max_journal, so any replay
    // now reconstructs partial state. Honest loss beats silently wrong
    // answers (the E24 checksum-identity contract).
    error = "replay journal was truncated; restored state would be "
            "incomplete";
    mark_lost_locked(entry);
    return false;
  }
  const std::size_t max_attempts = backends_.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::string target;
    if (entry.repl.has_replica) {
      Backend* peer = backend_by_name(entry.repl.peer);
      if (peer == nullptr || peer->state.load(std::memory_order_acquire) ==
                                 BackendState::kDown) {
        error = "replica peer '" + entry.repl.peer + "' is down";
        break;
      }
      target = entry.repl.peer;
    } else if (entry.repl.shipped_seq == 0) {
      // Nothing was ever shipped, so the journal holds the session's
      // whole history: any live backend can rebuild it from scratch.
      target = pick_owner(entry.id);
      if (target.empty()) {
        error = "no live backends";
        break;
      }
    } else {
      error = "journal is partial and the replica was consumed";
      break;
    }
    std::uint64_t backend_session = 0;
    if (replicator_.restore(entry.id, target, exchange_, entry.repl,
                            backend_session, error)) {
      entry.owner = target;
      entry.backend_session = backend_session;
      ++counters_.sessions_moved;
      // Redundancy was consumed by the adopt; re-ship to a fresh peer
      // right away so a second failure stays survivable.
      const std::string peer = pick_peer_for(entry.id, target);
      if (!peer.empty()) {
        (void)replicator_.ship(entry.id, target, backend_session, peer,
                               exchange_, entry.repl, obs::now_ns());
      }
      return true;
    }
    Backend* target_backend = backend_by_name(target);
    if (target_backend != nullptr &&
        target_backend->state.load(std::memory_order_acquire) !=
            BackendState::kDown) {
      // The target is alive but refused (restore_failed, replica gone):
      // no other backend can do better.
      break;
    }
    // The target died mid-restore; re-evaluate sources and retry.
  }
  mark_lost_locked(entry);
  return false;
}

std::string Router::shard_status(std::uint64_t id) {
  io::JsonObject result;
  io::JsonArray backends;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    io::JsonObject status;
    status["failed"] = backend->failed.to_json();
    status["name"] = io::Json(backend->name);
    status["routed"] = backend->routed.to_json();
    status["state"] = io::Json(std::string(backend_state_name(
        backend->state.load(std::memory_order_acquire))));
    backends.emplace_back(std::move(status));
  }
  result["backends"] = io::Json(std::move(backends));
  result["failovers"] = counters_.failovers.to_json();
  result["lost_sessions"] = counters_.lost_sessions.to_json();
  result["replication"] = replicator_.counters().to_json();
  result["sessions"] = io::Json(session_count());
  result["sessions_moved"] = counters_.sessions_moved.to_json();
  return svc::make_ok(id, io::Json(std::move(result)));
}

// --- single-lock helpers ---------------------------------------------------

std::shared_ptr<SessionEntry> Router::find_entry(std::uint64_t sid) const {
  common::MutexLock lock(table_mutex_);
  const auto it = sessions_.find(sid);
  return it != sessions_.end() ? it->second : nullptr;
}

std::shared_ptr<SessionEntry> Router::allocate_entry() {
  common::MutexLock lock(table_mutex_);
  const std::uint64_t sid = next_session_id_++;
  auto entry = std::make_shared<SessionEntry>(sid);
  sessions_.emplace(sid, entry);
  return entry;
}

void Router::erase_entry(std::uint64_t sid) {
  common::MutexLock lock(table_mutex_);
  sessions_.erase(sid);
}

std::size_t Router::session_count() const {
  common::MutexLock lock(table_mutex_);
  return sessions_.size();
}

std::string Router::pick_owner(std::uint64_t sid) const {
  common::MutexLock lock(ring_mutex_);
  return ring_.owner(ring_key(sid), down_backends());
}

std::string Router::pick_peer_for(std::uint64_t sid,
                                  const std::string& exclude) const {
  std::set<std::string> down = down_backends();
  down.insert(exclude);
  common::MutexLock lock(ring_mutex_);
  return ring_.owner(ring_key(sid), down);
}

svc::TransportStatus Router::exchange_with(Backend& backend,
                                           const std::string& payload,
                                           std::string& response) {
  if (backend.state.load(std::memory_order_acquire) == BackendState::kDown) {
    return svc::TransportStatus::kConnectionLost;
  }
  common::MutexLock lock(backend.conn_mutex);
  if (backend.transport == nullptr) backend.transport = backend.factory();
  if (backend.transport == nullptr) {
    ++backend.failed;
    mark_backend_down(backend);
    return svc::TransportStatus::kConnectionLost;
  }
  ++backend.routed;
  ++counters_.routed;
  std::string response_frame;
  std::string error;
  const svc::TransportStatus status = backend.transport->roundtrip(
      svc::encode_frame(payload), response_frame, error);
  if (status == svc::TransportStatus::kConnectionLost) {
    ++backend.failed;
    backend.transport.reset();
    mark_backend_down(backend);
    return status;
  }
  if (status != svc::TransportStatus::kOk) {
    ++backend.failed;
    return status;
  }
  std::size_t consumed = 0;
  if (svc::try_decode_frame(response_frame,
                            std::numeric_limits<std::uint32_t>::max(),
                            consumed, response) != svc::FrameStatus::kFrame) {
    ++backend.failed;
    return svc::TransportStatus::kError;
  }
  return svc::TransportStatus::kOk;
}

void Router::probe_backend(Backend& backend, std::uint64_t now_ns) {
  common::MutexLock lock(backend.conn_mutex);
  if (!backend.backoff.due(now_ns)) return;
  // Probes prefer a dedicated short-deadline connection (probe_factory)
  // so a wedged backend cannot stall the sweep, and the forward
  // connection never inherits a ping-sized deadline.
  const bool dedicated = static_cast<bool>(backend.probe_factory);
  std::unique_ptr<svc::Transport>& probe_conn =
      dedicated ? backend.probe_transport : backend.transport;
  if (probe_conn == nullptr) {
    probe_conn = dedicated ? backend.probe_factory() : backend.factory();
  }
  bool healthy = false;
  if (probe_conn != nullptr) {
    io::JsonObject ping;
    ping["cmd"] = io::Json(svc::cmd::kPing);
    ping["id"] = io::Json(std::uint64_t{0});
    std::string response_frame;
    std::string error;
    const svc::TransportStatus status = probe_conn->roundtrip(
        svc::encode_frame(io::Json(std::move(ping)).dump()), response_frame,
        error);
    healthy = status == svc::TransportStatus::kOk &&
              response_frame.find("\"ok\":true") != std::string::npos;
    if (!healthy) probe_conn.reset();
  }
  if (!healthy && dedicated) {
    // A dead probe connection implies the shared forward socket is dead
    // too; drop it so the next forward reconnects instead of writing
    // into a stale one.
    backend.transport.reset();
  }
  if (healthy) {
    backend.backoff.reset();
    backend.state.store(BackendState::kUp, std::memory_order_release);
    return;
  }
  backend.backoff.on_failure(now_ns);
  if (backend.backoff.exhausted()) {
    mark_backend_down(backend);
  } else if (backend.state.load(std::memory_order_acquire) ==
             BackendState::kUp) {
    backend.state.store(BackendState::kSuspect, std::memory_order_release);
  }
}

// --- lock-free helpers -----------------------------------------------------

Backend* Router::backend_by_name(const std::string& name) const {
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->name == name) return backend.get();
  }
  return nullptr;
}

std::set<std::string> Router::down_backends() const {
  std::set<std::string> down;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->state.load(std::memory_order_acquire) ==
        BackendState::kDown) {
      down.insert(backend->name);
    }
  }
  return down;
}

void Router::mark_backend_down(Backend& backend) {
  if (backend.state.exchange(BackendState::kDown,
                             std::memory_order_acq_rel) !=
      BackendState::kDown) {
    ++counters_.failovers;
  }
}

std::uint64_t Router::ring_key(std::uint64_t sid) {
  return fnv1a_bytes("session:" + std::to_string(sid));
}

void Router::mark_lost_locked(SessionEntry& entry) {
  if (!entry.lost) {
    entry.lost = true;
    ++counters_.lost_sessions;
  }
}

BackendState Router::backend_state(const std::string& name) const {
  const Backend* backend = backend_by_name(name);
  return backend != nullptr
             ? backend->state.load(std::memory_order_acquire)
             : BackendState::kDown;
}

// --- health monitor --------------------------------------------------------

void Router::health_sweep(std::uint64_t now_ns) {
  for (const std::unique_ptr<Backend>& backend : backends_) {
    // kDown is terminal for the sweep until a probe succeeds — but we
    // keep probing, because a restarted backend should rejoin the ring's
    // live set without operator action.
    probe_backend(*backend, now_ns);
  }
}

void Router::start_health_monitor() {
  if (health_running_.exchange(true)) return;
  {
    // stop() leaves stopping_ set; clear it so a restarted monitor
    // actually sweeps (both calls are documented idempotent, and a
    // monitor thread that exits immediately would freeze every backend
    // in its last observed state).
    common::MutexLock lock(health_mutex_);
    stopping_.store(false, std::memory_order_release);
  }
  health_thread_ = std::thread([this] {
    while (!stopping_.load(std::memory_order_acquire)) {
      health_sweep(obs::now_ns());
      common::MutexLock lock(health_mutex_);
      if (stopping_.load(std::memory_order_acquire)) break;
      health_cv_.wait_for(
          lock.native(),
          std::chrono::milliseconds(config_.health_interval_ms));
    }
  });
}

void Router::stop() {
  {
    common::MutexLock lock(health_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  health_running_.store(false, std::memory_order_release);
}

void Router::wait_shutdown() {
  common::MutexLock lock(shutdown_mutex_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    shutdown_cv_.wait(lock.native());
  }
}

void Router::request_shutdown() {
  {
    common::MutexLock lock(shutdown_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  shutdown_cv_.notify_all();
}

}  // namespace rim::shard
