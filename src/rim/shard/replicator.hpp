#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/svc/transport.hpp"

/// \file replicator.hpp
/// Spill-to-peer session replication for the shard router (DESIGN.md §14).
///
/// The PR 5 SessionManager spills LRU sessions to disk as versioned,
/// checksummed core::Snapshots and restores them bit-identically. The
/// Replicator promotes that path to *spill-to-peer*: after every
/// `ship_every` acked mutating commands on a session, the router fetches
/// the owner backend's snapshot and streams it to the session's designated
/// peer shard (replicate_session). Between ships, acked mutating request
/// payloads accumulate in a per-session journal.
///
/// **Exactly-once failover.** The replica + journal describe *acked*
/// state only: a command torn by a connection loss was never journaled,
/// so restore() — adopt the replica at the peer, replay the journal in
/// order — reconstructs precisely the state every acked command produced,
/// after which the router re-forwards the torn command once. No command
/// is applied twice and none is lost, which is what makes the E24
/// kill-a-shard run checksum-identical to its unkilled twin.
///
/// A *replicate* exchange can tear too: the peer stores the snapshot but
/// the response is lost. Two mechanisms keep that exactly-once: every
/// ship attempt uses a fresh sequence number strictly above any attempt
/// ever sent (a possibly-landed torn ship is never resent as "stale"),
/// and every journal entry is tagged with the first ship seq whose
/// snapshot covered its effects — restore() drops entries the adopted
/// replica's seq already covers instead of replaying them twice.
///
/// The Replicator is transport-agnostic: every backend exchange goes
/// through an injected Exchange callable (the router wires it to its
/// per-backend connections; tests wire fakes). All per-session state
/// lives in ReplicaState, which the *caller* guards (the router holds the
/// session entry mutex across every call here).

namespace rim::shard {

/// One request/response exchange with a named backend. The payload is a
/// deframed protocol.hpp JSON document; implementations frame it, ship
/// it, and deframe the response.
using Exchange = std::function<svc::TransportStatus(
    const std::string& backend, const std::string& payload,
    std::string& response_payload)>;

struct ReplicationPolicy {
  /// Ship a snapshot to the peer after this many acked mutating commands
  /// (1 = after every mutating command batch; the replication cadence).
  std::size_t ship_every = 1;
  /// Journal entries beyond this are a configuration error surfaced via
  /// ship-failure accounting (the journal only grows while ships fail).
  std::size_t max_journal = 4096;
};

/// Lock-free counters + replication lag histogram (registered under the
/// router's "shard.router" registry source).
struct ReplicatorCounters {
  obs::Counter shipped;             ///< snapshots accepted by a peer
  obs::Counter ship_failures;       ///< snapshot/replicate exchanges failed
  obs::Counter journal_truncated;   ///< mutations dropped past max_journal
  obs::Counter replays;             ///< journal entries replayed on restore
  obs::Counter adoptions;           ///< replicas promoted on a peer
  obs::Counter adoption_failures;   ///< restore() runs that failed
  obs::Histogram lag_ns;            ///< mutation-ack → replica-shipped lag

  [[nodiscard]] io::Json to_json() const;
};

/// One acked mutating request awaiting snapshot coverage.
struct JournalEntry {
  std::string payload;  ///< acked mutating request (the replay script)
  /// Seq of the first ship attempt whose snapshot included this entry's
  /// effects (0 = never included). Snapshots are full owner state, so a
  /// replica adopted at seq >= ship_seq already contains the mutation and
  /// replaying it would double-apply.
  std::uint64_t ship_seq = 0;
};

/// Per-session replication state. Guarded by the owning session entry's
/// mutex (router.hpp); the Replicator never locks.
struct ReplicaState {
  /// Acked mutating requests since the last successful ship, in ack
  /// order (the replay script).
  std::vector<JournalEntry> journal;
  std::uint64_t shipped_seq = 0;        ///< last ship acked by a peer
  /// Highest seq ever sent in a replicate exchange (>= shipped_seq). A
  /// torn replicate may have landed at the peer, so the next attempt
  /// must use a seq above every attempt, not just above the acked one.
  std::uint64_t ship_attempt_seq = 0;
  std::uint64_t muts_since_ship = 0;
  std::uint64_t oldest_unshipped_ns = 0;///< ack time of journal.front()
  std::string peer;                     ///< backend holding the replica
  bool has_replica = false;
  /// The journal shed acked entries past max_journal: any replay now
  /// reconstructs partial state, so failover must report the session
  /// lost instead. Cleared by the next successful ship (the snapshot is
  /// full state, superseding everything the journal dropped).
  bool truncated = false;
};

class Replicator {
 public:
  explicit Replicator(ReplicationPolicy policy) : policy_(policy) {}

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Record one acked mutating request \p payload at \p now_ns. Returns
  /// true when the cadence says a ship is due.
  bool record_mutation(ReplicaState& state, std::string payload,
                       std::uint64_t now_ns);

  /// Fetch \p origin's snapshot from \p owner (backend session
  /// \p owner_session) and ship it to \p peer at the next ship sequence.
  /// On success the journal resets and the replication lag is recorded.
  /// On failure the journal is kept — the next mutation retries.
  bool ship(std::uint64_t origin, const std::string& owner,
            std::uint64_t owner_session, const std::string& peer,
            const Exchange& exchange, ReplicaState& state,
            std::uint64_t now_ns);

  /// Failover restore onto \p target: adopt the replica (or create a
  /// fresh session when nothing was ever shipped — the journal then holds
  /// the session's whole history) and replay the journal in order. On
  /// success \p backend_session is the promoted session's id on \p target
  /// and the state's replica bookkeeping resets (the caller re-ships to a
  /// new peer). False with \p error when the peer cannot reconstruct the
  /// session — the session is lost.
  bool restore(std::uint64_t origin, const std::string& target,
               const Exchange& exchange, ReplicaState& state,
               std::uint64_t& backend_session, std::string& error);

  [[nodiscard]] const ReplicatorCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const ReplicationPolicy& policy() const { return policy_; }

 private:
  const ReplicationPolicy policy_;
  ReplicatorCounters counters_;
};

}  // namespace rim::shard
