#include "rim/shard/replicator.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "rim/svc/protocol.hpp"

namespace rim::shard {

namespace {

/// Run one exchange and parse the response envelope. True iff the
/// exchange succeeded and the response is ok:true; \p result then holds
/// the "result" document (null Json when absent).
bool call_ok(const Exchange& exchange, const std::string& backend,
             const std::string& payload, io::Json& result,
             std::string& error) {
  std::string response;
  const svc::TransportStatus status = exchange(backend, payload, response);
  if (status != svc::TransportStatus::kOk) {
    error = status == svc::TransportStatus::kConnectionLost
                ? "connection to " + backend + " lost"
                : "exchange with " + backend + " failed";
    return false;
  }
  io::Json document;
  if (!io::Json::parse(response, document, error)) return false;
  const io::Json* ok = document.find("ok");
  if (ok == nullptr || !ok->as_bool(false)) {
    const io::Json* message = document.find("error");
    const std::string* text =
        message != nullptr ? message->as_string() : nullptr;
    error = backend + " answered: " +
            (text != nullptr ? *text : std::string("unknown error"));
    return false;
  }
  const io::Json* result_field = document.find("result");
  result = result_field != nullptr ? *result_field : io::Json();
  return true;
}

/// Rewrite the "session" field of a journaled request payload to the
/// replayed session id. False when the payload no longer parses (it was
/// acked by a backend, so this indicates memory corruption, not input).
bool rewrite_session(const std::string& payload, std::uint64_t session,
                     std::string& out, std::string& error) {
  io::Json request;
  if (!io::Json::parse(payload, request, error)) return false;
  io::JsonObject object = *request.as_object();
  object["session"] = io::Json(session);
  out = io::Json(std::move(object)).dump();
  return true;
}

}  // namespace

io::Json ReplicatorCounters::to_json() const {
  io::JsonObject object;
  object["adoption_failures"] = adoption_failures.to_json();
  object["adoptions"] = adoptions.to_json();
  object["journal_truncated"] = journal_truncated.to_json();
  object["lag_ns"] = lag_ns.to_json();
  object["replays"] = replays.to_json();
  object["ship_failures"] = ship_failures.to_json();
  object["shipped"] = shipped.to_json();
  return io::Json(std::move(object));
}

bool Replicator::record_mutation(ReplicaState& state, std::string payload,
                                 std::uint64_t now_ns) {
  if (state.journal.size() >= policy_.max_journal) {
    // The journal only grows while ships keep failing; shedding the
    // oldest entry keeps memory bounded at the cost of giving up
    // replayability. The truncated flag makes that loss honest: failover
    // refuses to replay a journal with a hole (the router reports the
    // session lost), and the next successful ship heals it.
    state.journal.erase(state.journal.begin());
    state.truncated = true;
    ++counters_.journal_truncated;
  }
  if (state.journal.empty()) state.oldest_unshipped_ns = now_ns;
  state.journal.push_back(JournalEntry{std::move(payload), 0});
  ++state.muts_since_ship;
  return state.muts_since_ship >= policy_.ship_every;
}

bool Replicator::ship(std::uint64_t origin, const std::string& owner,
                      std::uint64_t owner_session, const std::string& peer,
                      const Exchange& exchange, ReplicaState& state,
                      std::uint64_t now_ns) {
  std::string error;
  io::JsonObject snapshot_request;
  snapshot_request["cmd"] = io::Json(svc::cmd::kSnapshot);
  snapshot_request["id"] = io::Json(std::uint64_t{0});
  snapshot_request["session"] = io::Json(owner_session);
  io::Json snapshot_result;
  if (!call_ok(exchange, owner, io::Json(std::move(snapshot_request)).dump(),
               snapshot_result, error)) {
    ++counters_.ship_failures;
    return false;
  }
  const io::Json* snapshot_doc = snapshot_result.find("snapshot");
  if (snapshot_doc == nullptr) {
    ++counters_.ship_failures;
    return false;
  }
  // A torn replicate may have stored an earlier attempt at the peer, so
  // this seq must be above every attempt ever sent — resending a
  // possibly-landed seq would be rejected as stale forever.
  const std::uint64_t seq =
      std::max(state.shipped_seq, state.ship_attempt_seq) + 1;
  state.ship_attempt_seq = seq;
  // The snapshot is full owner state: every journaled mutation so far is
  // covered by it. Tag untagged entries so a failover that adopts this
  // snapshot (even via a torn-but-landed replicate) skips them.
  for (JournalEntry& entry : state.journal) {
    if (entry.ship_seq == 0) entry.ship_seq = seq;
  }
  io::JsonObject replicate_request;
  replicate_request["cmd"] = io::Json(svc::cmd::kReplicateSession);
  replicate_request["id"] = io::Json(std::uint64_t{0});
  replicate_request["origin"] = io::Json(origin);
  replicate_request["seq"] = io::Json(seq);
  replicate_request["snapshot"] = *snapshot_doc;
  io::Json replicate_result;
  if (!call_ok(exchange, peer,
               io::Json(std::move(replicate_request)).dump(),
               replicate_result, error)) {
    ++counters_.ship_failures;
    return false;
  }
  state.shipped_seq = seq;
  state.journal.clear();
  state.muts_since_ship = 0;
  state.peer = peer;
  state.has_replica = true;
  state.truncated = false;
  if (state.oldest_unshipped_ns != 0 &&
      now_ns >= state.oldest_unshipped_ns) {
    counters_.lag_ns.record(now_ns - state.oldest_unshipped_ns);
  }
  state.oldest_unshipped_ns = 0;
  ++counters_.shipped;
  return true;
}

bool Replicator::restore(std::uint64_t origin, const std::string& target,
                         const Exchange& exchange, ReplicaState& state,
                         std::uint64_t& backend_session, std::string& error) {
  io::Json result;
  const bool adopted = state.has_replica;
  if (state.has_replica) {
    io::JsonObject adopt_request;
    adopt_request["cmd"] = io::Json(svc::cmd::kAdoptSession);
    adopt_request["id"] = io::Json(std::uint64_t{0});
    adopt_request["origin"] = io::Json(origin);
    if (!call_ok(exchange, target, io::Json(std::move(adopt_request)).dump(),
                 result, error)) {
      ++counters_.adoption_failures;
      return false;
    }
  } else {
    // Nothing was ever shipped: the journal holds the session's entire
    // mutation history, so a fresh session + full replay reconstructs it.
    io::JsonObject create_request;
    create_request["cmd"] = io::Json(svc::cmd::kCreateSession);
    create_request["id"] = io::Json(std::uint64_t{0});
    if (!call_ok(exchange, target, io::Json(std::move(create_request)).dump(),
                 result, error)) {
      ++counters_.adoption_failures;
      return false;
    }
  }
  const io::Json* session_field = result.find("session");
  std::uint64_t session = 0;
  if (session_field == nullptr ||
      !svc::json_to_u64(*session_field,
                        std::numeric_limits<std::uint64_t>::max(), session)) {
    ++counters_.adoption_failures;
    error = target + " returned no session id";
    return false;
  }
  // The adopted replica may be newer than the last *acked* ship (a torn
  // replicate that landed): its seq says exactly which journal entries
  // its snapshot already contains, and replaying those would apply them
  // twice.
  std::uint64_t adopted_seq = 0;
  if (adopted) {
    const io::Json* seq_field = result.find("seq");
    if (seq_field != nullptr) {
      (void)svc::json_to_u64(*seq_field,
                             std::numeric_limits<std::uint64_t>::max(),
                             adopted_seq);
    }
  }
  for (const JournalEntry& entry : state.journal) {
    if (adopted && entry.ship_seq != 0 && entry.ship_seq <= adopted_seq) {
      continue;  // already inside the adopted snapshot
    }
    std::string replay_payload;
    if (!rewrite_session(entry.payload, session, replay_payload, error)) {
      ++counters_.adoption_failures;
      return false;
    }
    io::Json replay_result;
    if (!call_ok(exchange, target, replay_payload, replay_result, error)) {
      ++counters_.adoption_failures;
      return false;
    }
    ++counters_.replays;
  }
  backend_session = session;
  // The replica (if any) was consumed by the adopt; the caller ships a
  // fresh snapshot to a new peer to restore redundancy.
  state.peer.clear();
  state.has_replica = false;
  state.ship_attempt_seq = std::max(state.ship_attempt_seq, adopted_seq);
  ++counters_.adoptions;
  return true;
}

}  // namespace rim::shard
