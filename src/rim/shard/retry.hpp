#pragma once

#include <cstddef>
#include <cstdint>

/// \file retry.hpp
/// Deterministic retry/backoff schedule for backend health probing
/// (DESIGN.md §14).
///
/// The schedule is a pure function of the failure count — base × mult^n,
/// clamped to a cap — with *no jitter*: the router is a single process in
/// front of a handful of backends, so thundering-herd protection buys
/// nothing, while a reproducible schedule makes the failover state
/// machine unit-testable against an injected clock
/// (tests/shard_router_test.cpp pins the exact deadline sequence).
///
/// Backoff carries the mutable side (failure count + next-allowed-at
/// deadline). It takes every timestamp as a parameter instead of reading
/// a clock, so tests drive it with synthetic time; the router feeds it
/// obs::now_ns() (the project's one sanctioned wall-clock door).

namespace rim::shard {

struct BackoffPolicy {
  std::uint64_t base_delay_ns = 50'000'000;  ///< first retry: 50ms
  double multiplier = 2.0;
  std::uint64_t max_delay_ns = 2'000'000'000;  ///< clamp: 2s
  /// Consecutive failures after which the target is declared dead
  /// (kSuspect → kDown in the failover state machine).
  std::size_t max_attempts = 4;

  /// Delay before retry number \p failures (1-based: the delay after the
  /// first failure is delay_ns(1) == base_delay_ns). Pure and total.
  [[nodiscard]] std::uint64_t delay_ns(std::size_t failures) const {
    if (failures == 0) return 0;
    double delay = static_cast<double>(base_delay_ns);
    for (std::size_t i = 1; i < failures; ++i) {
      delay *= multiplier;
      if (delay >= static_cast<double>(max_delay_ns)) {
        return max_delay_ns;
      }
    }
    const auto clamped = static_cast<std::uint64_t>(delay);
    return clamped > max_delay_ns ? max_delay_ns : clamped;
  }
};

/// Failure counter + deadline tracker for one probe target.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy) : policy_(policy) {}

  /// Record a failure observed at \p now_ns; the next attempt is allowed
  /// at the returned deadline.
  std::uint64_t on_failure(std::uint64_t now_ns) {
    ++failures_;
    deadline_ns_ = now_ns + policy_.delay_ns(failures_);
    return deadline_ns_;
  }

  /// Success resets the schedule.
  void reset() {
    failures_ = 0;
    deadline_ns_ = 0;
  }

  /// True when a retry is allowed at \p now_ns.
  [[nodiscard]] bool due(std::uint64_t now_ns) const {
    return now_ns >= deadline_ns_;
  }

  /// True once max_attempts consecutive failures have accumulated.
  [[nodiscard]] bool exhausted() const {
    return failures_ >= policy_.max_attempts;
  }

  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t deadline_ns() const { return deadline_ns_; }
  [[nodiscard]] const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  std::size_t failures_ = 0;
  std::uint64_t deadline_ns_ = 0;
};

}  // namespace rim::shard
