#include "rim/shard/hash_ring.hpp"

namespace rim::shard {

std::uint64_t fnv1a_bytes(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. FNV-1a disperses poorly in the high bits for the
/// short, similar strings rings are made of ("shard-0#17", "session:42"):
/// unmixed, a 4-member ring can end up with one member owning 60% of the
/// key space and another owning none of the live sessions. Every point and
/// every lookup key passes through this mix, so placement quality does not
/// depend on the input strings' shape.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& member) {
  if (!members_.insert(member).second) return;
  rebuild();
}

void HashRing::remove(const std::string& member) {
  if (members_.erase(member) == 0) return;
  rebuild();
}

bool HashRing::contains(const std::string& member) const {
  return members_.count(member) != 0;
}

void HashRing::rebuild() {
  points_.clear();
  for (const std::string& member : members_) {
    for (std::size_t i = 0; i < vnodes_; ++i) {
      const std::uint64_t point =
          mix64(fnv1a_bytes(member + "#" + std::to_string(i)));
      // Collision winner is the lexicographically smaller member, which
      // members_'s ascending iteration gives us for free: first writer
      // wins.
      points_.emplace(point, member);
    }
  }
}

std::string HashRing::owner(std::uint64_t key,
                            const std::set<std::string>& down) const {
  if (points_.empty()) return "";
  // Walk clockwise from the key's point, wrapping once; the first live
  // member wins. Bounded by the point count, so a fully-down ring
  // terminates with "".
  auto it = points_.lower_bound(mix64(key));
  for (std::size_t steps = 0; steps < points_.size(); ++steps) {
    if (it == points_.end()) it = points_.begin();
    if (down.count(it->second) == 0) return it->second;
    ++it;
  }
  return "";
}

std::string HashRing::peer(std::uint64_t key,
                           const std::set<std::string>& down) const {
  const std::string first = owner(key, down);
  if (first.empty()) return "";
  auto it = points_.lower_bound(mix64(key));
  for (std::size_t steps = 0; steps < points_.size(); ++steps) {
    if (it == points_.end()) it = points_.begin();
    const std::string& member = it->second;
    if (member != first && down.count(member) == 0) return member;
    ++it;
  }
  return "";
}

}  // namespace rim::shard
