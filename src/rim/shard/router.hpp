#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/obs/registry.hpp"
#include "rim/shard/hash_ring.hpp"
#include "rim/shard/replicator.hpp"
#include "rim/shard/retry.hpp"
#include "rim/svc/handler.hpp"
#include "rim/svc/transport.hpp"

/// \file router.hpp
/// The shard router: a consistent-hash front tier over N backend
/// svc::Service processes (DESIGN.md §14).
///
/// The Router is itself a svc::RequestHandler, so it serves the existing
/// length-prefixed JSON wire protocol *unchanged* through the existing
/// transports (svc::TcpServer, svc::LoopbackTransport) — clients speak to
/// it exactly as they would to a single Service. Downstream it speaks the
/// same protocol to each backend over an injected Transport (TCP for real
/// deployments, loopback for tests/benches).
///
/// **Routing.** Session ids are router-assigned and consistent-hashed
/// onto the backend ring (hash_ring.hpp). Session commands are forwarded
/// with only the "session" field rewritten to the backend-local id and
/// the response passed through verbatim, so a router-mediated exchange is
/// byte-identical to a direct one (tests/shard_router_test.cpp pins this
/// command by command). ping/metrics/shard_status/shutdown are answered
/// by the router itself.
///
/// **Replication & failover.** After every acked mutating command the
/// session's Replicator journal grows; at the configured cadence the
/// owner's snapshot is shipped to the session's peer shard
/// (replicator.hpp). A backend that fails a health probe enters kSuspect
/// and is retried on the deterministic backoff schedule (retry.hpp); a
/// connection lost mid-forward, or an exhausted probe budget, moves it to
/// kDown (terminal until a probe succeeds again). Sessions owned by a
/// dead backend fail over lazily on next touch: adopt the replica at the
/// peer, replay the journal, re-forward the interrupted command — then
/// ship a fresh snapshot to a new peer to restore redundancy. The
/// interrupted command was never journaled (only *acked* commands are),
/// so it applies exactly once.
///
/// **Lock order** (machine-checked by rim_lint --project, §13):
///   Router::table_mutex_ → SessionEntry::entry_mutex →
///   Router::ring_mutex_ → Backend::conn_mutex
/// The table lock covers only id→entry bookkeeping; per-session work
/// serializes on the entry mutex (journal order is the replay contract);
/// the ring lock covers placement reads; each backend connection
/// serializes its exchanges last. Helper functions each take exactly one
/// of these so no code path nests them out of order.

namespace rim::shard {

enum class BackendState : std::uint8_t {
  kUp,       ///< serving
  kSuspect,  ///< failed a probe; retrying on the backoff schedule
  kDown,     ///< declared dead; sessions fail over (terminal until a
             ///< reconnect probe succeeds)
};

/// Wire name of a backend state ("up"/"suspect"/"down").
[[nodiscard]] const char* backend_state_name(BackendState state);

/// One backend endpoint: a ring member name plus a factory producing a
/// connected transport to it (nullptr when connecting fails).
struct BackendEndpoint {
  std::string name;
  std::function<std::unique_ptr<svc::Transport>()> connect;
  /// Optional dedicated health-probe connection factory, typically built
  /// with a short socket deadline so a wedged backend is detected rather
  /// than waited on. Forwards must NOT share that deadline — a
  /// legitimately slow bulk command (a million-node apply_batch) is not
  /// ill health. When absent, probes share `connect`.
  std::function<std::unique_ptr<svc::Transport>()> probe_connect;
};

struct RouterConfig {
  std::vector<BackendEndpoint> backends;
  /// Virtual ring points per backend (hash_ring.hpp).
  std::size_t vnodes = 64;
  /// Router-level in-flight admission cap (shed-not-queue, §9).
  std::size_t max_in_flight = 256;
  /// Per-frame payload cap enforced by the router's transports.
  std::size_t max_frame_bytes = svc::kDefaultMaxFrameBytes;
  /// Snapshot ship cadence + journal bound (replicator.hpp).
  ReplicationPolicy replication{};
  /// Health probe retry schedule (retry.hpp); max_attempts consecutive
  /// probe failures move a backend kSuspect → kDown.
  BackoffPolicy health_backoff{};
  /// Monitor thread probe cadence.
  std::uint64_t health_interval_ms = 200;
  /// Accept the "shutdown" command (rim_cli router turns this on).
  bool allow_shutdown = false;
};

/// Router-global counters (lock-free; the "shard.router" registry source).
struct RouterCounters {
  obs::Counter requests;            ///< payloads handled (ok + error)
  obs::Counter ok;                  ///< answered ok=true
  obs::Counter errors;              ///< answered ok=false (any code)
  obs::Counter rejected_overloaded; ///< shed by the router in-flight gate
  obs::Counter rejected_bad_frame;  ///< unparseable payloads
  obs::Counter routed;              ///< exchanges forwarded to backends
  obs::Counter forward_failures;    ///< forwards failed after failover
  obs::Counter failovers;           ///< backend transitions to kDown
  obs::Counter sessions_moved;      ///< sessions migrated to a new owner
  obs::Counter lost_sessions;       ///< sessions no backend could restore
  obs::Counter handle_ns;           ///< total time inside handle paths
  obs::Histogram latency_ns;        ///< per-request handling latency

  [[nodiscard]] io::Json to_json() const;
};

/// One backend's runtime: connection, probe schedule, failover state.
struct Backend {
  Backend(std::string backend_name,
          std::function<std::unique_ptr<svc::Transport>()> transport_factory,
          std::function<std::unique_ptr<svc::Transport>()>
              probe_transport_factory,
          const BackoffPolicy& policy)
      : name(std::move(backend_name)),
        factory(std::move(transport_factory)),
        probe_factory(std::move(probe_transport_factory)),
        backoff(policy) {}

  const std::string name;
  const std::function<std::unique_ptr<svc::Transport>()> factory;
  /// Health-probe connection factory (empty = probes share `factory`
  /// and the forward connection).
  const std::function<std::unique_ptr<svc::Transport>()> probe_factory;
  /// Failover state machine; atomic so routing reads it without the
  /// connection lock (transitions: kUp↔kSuspect via probes, →kDown via
  /// exhausted probes or a lost forward, kDown→kUp via a probe success).
  std::atomic<BackendState> state{BackendState::kUp};
  obs::Counter routed;  ///< exchanges attempted against this backend
  obs::Counter failed;  ///< of those, failed (lost or errored)

  /// DESIGN §14 lock order: acquired last, after any table/entry/ring
  /// lock — one backend exchange at a time.
  common::Mutex conn_mutex RIM_ACQUIRED_AFTER(Router::ring_mutex_);
  std::unique_ptr<svc::Transport> transport RIM_GUARDED_BY(conn_mutex);
  /// Dedicated probe connection (only when probe_factory is set).
  std::unique_ptr<svc::Transport> probe_transport RIM_GUARDED_BY(conn_mutex);
  Backoff backoff RIM_GUARDED_BY(conn_mutex);
};

/// One routed session: placement + replication state. Commands for a
/// session serialize on entry_mutex — journal append order is the
/// failover replay order, so it must match the ack order exactly.
struct SessionEntry {
  explicit SessionEntry(std::uint64_t session_id) : id(session_id) {}

  const std::uint64_t id;  ///< router-assigned (wire-visible) session id
  /// DESIGN §14 lock order: after the table lock, before ring/connection.
  common::Mutex entry_mutex RIM_ACQUIRED_AFTER(Router::table_mutex_)
      RIM_ACQUIRED_BEFORE(Router::ring_mutex_);
  std::string owner RIM_GUARDED_BY(entry_mutex);  ///< owning backend name
  std::uint64_t backend_session RIM_GUARDED_BY(entry_mutex) = 0;
  bool lost RIM_GUARDED_BY(entry_mutex) = false;
  ReplicaState repl RIM_GUARDED_BY(entry_mutex);
};

class Router final : public svc::RequestHandler {
 public:
  explicit Router(RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  using Ticket = svc::RequestHandler::Ticket;

  [[nodiscard]] Ticket try_admit() override;
  [[nodiscard]] std::string handle_admitted(std::string_view payload) override;
  [[nodiscard]] std::string overloaded_response(
      std::string_view payload) override;
  [[nodiscard]] std::size_t max_frame_bytes() const override {
    return config_.max_frame_bytes;
  }

  /// Start the background health monitor (idempotent). Tests drive
  /// health_sweep() directly with synthetic time instead.
  void start_health_monitor();

  /// Stop the health monitor and join its thread (idempotent; the
  /// destructor calls it).
  void stop();

  /// One synchronous probe pass over all backends at \p now_ns.
  void health_sweep(std::uint64_t now_ns);

  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const RouterCounters& counters() const { return counters_; }
  [[nodiscard]] const Replicator& replicator() const { return replicator_; }

  [[nodiscard]] std::size_t session_count() const RIM_EXCLUDES(table_mutex_);

  /// State of backend \p name (kDown when unknown).
  [[nodiscard]] BackendState backend_state(const std::string& name) const;

  /// True once a "shutdown" command was accepted.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Block until shutdown_requested() (rim_cli router's main loop).
  void wait_shutdown() RIM_EXCLUDES(shutdown_mutex_);

  /// Trip the shutdown flag locally (tests; signal handlers).
  void request_shutdown() RIM_EXCLUDES(shutdown_mutex_);

 protected:
  void release_admission() override {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::string dispatch(std::string_view payload);
  [[nodiscard]] std::string dispatch_command(std::uint64_t id,
                                             const std::string& command,
                                             const io::Json& request);
  [[nodiscard]] std::string create_session(std::uint64_t id);
  [[nodiscard]] std::string close_session(std::uint64_t id,
                                          const io::Json& request);
  [[nodiscard]] std::string route_session_command(std::uint64_t id,
                                                  const std::string& command,
                                                  const io::Json& request);
  /// Forward one session command; retries across failovers. Requires the
  /// entry mutex (journal order is the replay contract).
  [[nodiscard]] std::string forward_locked(SessionEntry& entry,
                                           std::uint64_t id,
                                           const std::string& command,
                                           const io::Json& request)
      RIM_REQUIRES(entry.entry_mutex);
  /// Move \p entry off its dead owner: restore at the replica peer (or a
  /// fresh backend when nothing was shipped), then re-ship to a new peer.
  [[nodiscard]] bool failover_locked(SessionEntry& entry, std::string& error)
      RIM_REQUIRES(entry.entry_mutex);
  [[nodiscard]] std::string shard_status(std::uint64_t id);

  // --- single-lock helpers (each takes exactly one lock; see file
  // comment for why no caller nests them out of order) ----------------
  [[nodiscard]] std::shared_ptr<SessionEntry> find_entry(std::uint64_t sid)
      const RIM_EXCLUDES(table_mutex_);
  [[nodiscard]] std::shared_ptr<SessionEntry> allocate_entry()
      RIM_EXCLUDES(table_mutex_);
  void erase_entry(std::uint64_t sid) RIM_EXCLUDES(table_mutex_);
  [[nodiscard]] std::string pick_owner(std::uint64_t sid) const
      RIM_EXCLUDES(ring_mutex_);
  /// First live ring member distinct from \p exclude for \p sid's key.
  [[nodiscard]] std::string pick_peer_for(std::uint64_t sid,
                                          const std::string& exclude) const
      RIM_EXCLUDES(ring_mutex_);
  /// One framed exchange on \p backend's connection (lazy reconnect). A
  /// lost connection resets the transport and declares the backend down.
  [[nodiscard]] svc::TransportStatus exchange_with(Backend& backend,
                                                   const std::string& payload,
                                                   std::string& response)
      RIM_EXCLUDES(backend.conn_mutex);
  /// Probe \p backend once at \p now_ns (ping + state transition).
  void probe_backend(Backend& backend, std::uint64_t now_ns)
      RIM_EXCLUDES(backend.conn_mutex);

  [[nodiscard]] Backend* backend_by_name(const std::string& name) const;
  [[nodiscard]] std::set<std::string> down_backends() const;
  void mark_backend_down(Backend& backend);
  [[nodiscard]] static std::uint64_t ring_key(std::uint64_t sid);
  void mark_lost_locked(SessionEntry& entry)
      RIM_REQUIRES(entry.entry_mutex);

  const RouterConfig config_;
  /// Fixed at construction; Backend instances own all mutable state.
  const std::vector<std::unique_ptr<Backend>> backends_;
  Replicator replicator_;
  obs::Registry registry_;
  RouterCounters counters_;
  /// Name-addressed exchange closure handed to the Replicator.
  const Exchange exchange_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> health_running_{false};

  mutable common::Mutex table_mutex_;
  /// std::map: shard_status iterates it into deterministic output.
  std::map<std::uint64_t, std::shared_ptr<SessionEntry>> sessions_
      RIM_GUARDED_BY(table_mutex_);
  std::uint64_t next_session_id_ RIM_GUARDED_BY(table_mutex_) = 1;

  mutable common::Mutex ring_mutex_ RIM_ACQUIRED_AFTER(Router::table_mutex_);
  HashRing ring_ RIM_GUARDED_BY(ring_mutex_);

  /// Monitor-thread parking only; never held with any other lock.
  common::Mutex health_mutex_;
  std::condition_variable health_cv_;
  std::thread health_thread_;

  std::atomic<bool> shutdown_{false};
  common::Mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
};

}  // namespace rim::shard
