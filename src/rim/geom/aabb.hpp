#pragma once

#include <algorithm>
#include <span>

#include "rim/geom/vec2.hpp"

/// \file aabb.hpp
/// Axis-aligned bounding boxes; used by the spatial indices.

namespace rim::geom {

/// A closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Aabb {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  [[nodiscard]] double width() const { return hi.x - lo.x; }
  [[nodiscard]] double height() const { return hi.y - lo.y; }

  /// Grow the box to include \p p.
  void expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Squared distance from \p p to the box (0 when inside).
  [[nodiscard]] double dist2_to(Vec2 p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return dx * dx + dy * dy;
  }
};

/// Bounding box of a non-empty point span.
[[nodiscard]] inline Aabb bounding_box(std::span<const Vec2> points) {
  Aabb box{points.front(), points.front()};
  for (Vec2 p : points.subspan(1)) box.expand(p);
  return box;
}

}  // namespace rim::geom
