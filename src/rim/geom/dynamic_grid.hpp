#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/obs/metrics.hpp"

/// \file dynamic_grid.hpp
/// Mutable uniform-grid spatial index over an evolving point set.
///
/// The immutable geom::GridIndex is rebuilt from scratch for every
/// evaluation — fine for one-shot queries, fatal for churn workloads where
/// a single node arrives, departs, or moves per tick. DynamicGrid keeps the
/// same cell decomposition in a hash map keyed by cell coordinate, so
/// points can be inserted, erased, moved, and relabelled in O(1) expected
/// time while disk queries stay O(cells ∩ disk). It is the persistent index
/// behind core::Scenario's incremental interference engine.
///
/// Storage is structure-of-arrays per cell: each cell holds contiguous
/// x/y/weight/id columns (the weight is the owner's squared transmission
/// radius, kept adjacent so the coverage kernels touch one stream). Disk
/// queries expose whole cells through for_each_cell_in_disk(); the
/// geom/grid_kernels.hpp kernels run the simd.hpp containment tests over
/// those columns two lanes at a time, bit-identical to the scalar loops.
///
/// Ids must be dense-ish small integers (they index internal arrays); the
/// engine's swap-with-last removal keeps them dense. Unlike GridIndex the
/// grid is unbounded: cells are materialised on demand, so points may roam
/// anywhere without a prior bounding box.

namespace rim::geom {

/// Observability counters of a DynamicGrid (obs layer; all monotone and
/// thread-safe — queries from concurrent batch tasks record freely).
struct GridStats {
  obs::Counter inserts;          ///< insert() calls
  obs::Counter erases;           ///< erase() calls
  obs::Counter moves;            ///< move() calls
  obs::Counter relabels;         ///< relabel() calls (swap-with-last renames)
  obs::Counter disk_queries;     ///< disk query calls (cell or point form)
  obs::Counter nearest_queries;  ///< nearest() calls

  [[nodiscard]] io::Json to_json() const;
};

class DynamicGrid {
 public:
  /// Read-only view of one cell's SoA columns. `xs[i]`, `ys[i]`, `ws[i]`
  /// and `ids[i]` describe the same point; `ws` is the squared radius
  /// registered via insert()/set_weight() (0 for non-transmitters).
  struct CellView {
    const double* xs = nullptr;
    const double* ys = nullptr;
    const double* ws = nullptr;
    const NodeId* ids = nullptr;
    std::size_t count = 0;
  };

  /// \p cell_size must be positive; pick it near the median query radius.
  explicit DynamicGrid(double cell_size = 1.0);

  /// Drop all points and start over with a new cell size.
  void clear(double cell_size);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] double cell_size() const { return cell_size_; }
  [[nodiscard]] bool contains(NodeId id) const {
    return id < present_.size() && present_[id] != 0;
  }
  [[nodiscard]] Vec2 position(NodeId id) const { return pos_[id]; }
  /// The weight (squared radius) registered for \p id (must be present).
  [[nodiscard]] double weight(NodeId id) const { return weight_[id]; }

  /// Pre-size the per-id mirrors and the cell table for \p nodes points —
  /// bulk loads (million-node deployments) pay one allocation per mirror
  /// and skip the hash-table rehash cascade instead of doubling through it.
  void reserve(std::size_t nodes);

  /// Insert \p id at \p p with coverage weight \p weight (its squared
  /// transmission radius). \p id must not currently be present.
  void insert(NodeId id, Vec2 p, double weight = 0.0);

  /// Remove \p id (must be present).
  void erase(NodeId id);

  /// Move \p id (must be present) to \p p; its weight travels with it.
  void move(NodeId id, Vec2 p);

  /// Update the coverage weight of \p id (must be present) in place.
  void set_weight(NodeId id, double weight);

  /// Rename \p from to \p to without moving the point. \p to must not be
  /// present. Supports the engine's swap-with-last node removal.
  void relabel(NodeId from, NodeId to);

  /// Invoke fn(CellView) for every cell that may hold points of the closed
  /// disk dist2(p, center) <= radius2 — the walk rectangle of the
  /// ulp-inflated radius, or every occupied cell when the rectangle is
  /// larger than the occupancy (bounding huge-radius queries by O(points)).
  /// Cells outside the disk may be visited; points inside it are never
  /// missed. Returns the number of cells visited.
  template <typename Fn>
  std::size_t for_each_cell_in_disk(Vec2 center, double radius2,
                                    Fn&& fn) const {
    ++stats_.disk_queries;
    if (count_ == 0 || radius2 < 0.0) return 0;
    // Same ulp inflation as GridIndex: a point whose exact squared distance
    // equals radius2 must never fall outside the visited cells.
    const double walk = std::sqrt(radius2) * (1.0 + 4e-16) +
                        std::numeric_limits<double>::denorm_min();
    const std::int64_t lox = coord(center.x - walk);
    const std::int64_t hix = coord(center.x + walk);
    const std::int64_t loy = coord(center.y - walk);
    const std::int64_t hiy = coord(center.y + walk);
    const auto span_x = static_cast<double>(hix - lox + 1);
    const auto span_y = static_cast<double>(hiy - loy + 1);
    std::size_t cells_visited = 0;
    // When the walk rectangle holds more cells than are occupied, scanning
    // the occupied cells directly is cheaper (and bounds a huge-radius
    // query by O(points) instead of O(rectangle area)).
    if (span_x * span_y > static_cast<double>(cells_.size())) {
      // RIM_LINT_ALLOW(project-taint): cell visit order is explicitly outside
      // this function's contract (the rectangle path below already visits in
      // a different order); callers fold cells with order-insensitive
      // set/count semantics, pinned bit-identical by the determinism tests.
      for (const auto& [key, cell] : cells_) {
        ++cells_visited;
        fn(cell.view());
      }
      return cells_visited;
    }
    for (std::int64_t cy = loy; cy <= hiy; ++cy) {
      for (std::int64_t cx = lox; cx <= hix; ++cx) {
        const auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        ++cells_visited;
        fn(it->second.view());
      }
    }
    return cells_visited;
  }

  /// Invoke fn(id, position) for every point with dist2(position, center)
  /// <= radius2 (closed disk, exact squared test — same contract as
  /// GridIndex::for_each_in_disk_squared). Returns the number of grid cells
  /// visited, for the caller's observability counters.
  std::size_t for_each_in_disk_squared(
      Vec2 center, double radius2,
      const std::function<void(NodeId, Vec2)>& fn) const;

  /// O(1) estimate of how many points a disk query would touch, from the
  /// cell count of the walk rectangle and the average cell occupancy. Used
  /// by the engine's incremental-vs-full fallback heuristic; never an
  /// undercount bound, just a density estimate.
  [[nodiscard]] std::size_t estimate_in_disk(Vec2 center, double radius) const;

  /// Nearest point to \p center other than \p exclude, by expanding-ring
  /// search; ties break toward the smaller id (deterministic, matching
  /// GridIndex::nearest). kInvalidNode when no eligible point exists.
  [[nodiscard]] NodeId nearest(Vec2 center, NodeId exclude = kInvalidNode) const;

  /// FNV-1a over (id, position bits, cell key) of every present point in
  /// ascending id order — a pure function of logical content, independent
  /// of per-cell bucket ordering and insertion history. Two grids holding
  /// the same points at the same cell size (e.g. an evolved grid and one
  /// rebuilt by Scenario::restore) checksum identically; snapshot tests
  /// use this to witness grid-occupancy equivalence.
  [[nodiscard]] std::uint64_t content_checksum() const;

  /// Lifetime operation counters (reset by clear()).
  [[nodiscard]] const GridStats& stats() const { return stats_; }

 private:
  /// Cells are keyed by their packed (cx, cy) coordinate. The pack wraps
  /// coordinates to 32 bits; a wrap collision merely co-buckets two far
  /// apart cells, and the exact distance test rejects their points.
  using CellKey = std::uint64_t;

  /// One cell's SoA columns (kept in lockstep; see CellView).
  struct Cell {
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<double> ws;
    std::vector<NodeId> ids;

    [[nodiscard]] CellView view() const {
      return {xs.data(), ys.data(), ws.data(), ids.data(), ids.size()};
    }
  };

  [[nodiscard]] static CellKey pack(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] std::int64_t coord(double x) const;
  [[nodiscard]] CellKey key_of(Vec2 p) const;
  void ensure_id(NodeId id);
  void attach_to_cell(NodeId id);
  void detach_from_cell(NodeId id);

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, Cell> cells_;
  // Per-id mirrors (indexed by id, grown on demand).
  std::vector<Vec2> pos_;
  std::vector<CellKey> key_;
  std::vector<std::uint32_t> idx_;  ///< slot within the cell's columns
  std::vector<double> weight_;
  std::vector<std::uint8_t> present_;
  // Mutable: const queries still count themselves (relaxed atomics).
  mutable GridStats stats_;
};

}  // namespace rim::geom
