#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/obs/metrics.hpp"

/// \file dynamic_grid.hpp
/// Mutable uniform-grid spatial index over an evolving point set.
///
/// The immutable geom::GridIndex is rebuilt from scratch for every
/// evaluation — fine for one-shot queries, fatal for churn workloads where
/// a single node arrives, departs, or moves per tick. DynamicGrid keeps the
/// same cell decomposition in a hash map keyed by cell coordinate, so
/// points can be inserted, erased, moved, and relabelled in O(1) expected
/// time while disk queries stay O(cells ∩ disk). It is the persistent index
/// behind core::Scenario's incremental interference engine.
///
/// Ids must be dense-ish small integers (they index internal arrays); the
/// engine's swap-with-last removal keeps them dense. Unlike GridIndex the
/// grid is unbounded: cells are materialised on demand, so points may roam
/// anywhere without a prior bounding box.

namespace rim::geom {

/// Observability counters of a DynamicGrid (obs layer; all monotone and
/// thread-safe — queries from concurrent batch tasks record freely).
struct GridStats {
  obs::Counter inserts;          ///< insert() calls
  obs::Counter erases;           ///< erase() calls
  obs::Counter moves;            ///< move() calls
  obs::Counter relabels;         ///< relabel() calls (swap-with-last renames)
  obs::Counter disk_queries;     ///< for_each_in_disk_squared() calls
  obs::Counter nearest_queries;  ///< nearest() calls

  [[nodiscard]] io::Json to_json() const;
};

class DynamicGrid {
 public:
  /// \p cell_size must be positive; pick it near the median query radius.
  explicit DynamicGrid(double cell_size = 1.0);

  /// Drop all points and start over with a new cell size.
  void clear(double cell_size);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] double cell_size() const { return cell_size_; }
  [[nodiscard]] bool contains(NodeId id) const {
    return id < present_.size() && present_[id] != 0;
  }
  [[nodiscard]] Vec2 position(NodeId id) const { return pos_[id]; }

  /// Insert \p id at \p p. \p id must not currently be present.
  void insert(NodeId id, Vec2 p);

  /// Remove \p id (must be present).
  void erase(NodeId id);

  /// Move \p id (must be present) to \p p.
  void move(NodeId id, Vec2 p);

  /// Rename \p from to \p to without moving the point. \p to must not be
  /// present. Supports the engine's swap-with-last node removal.
  void relabel(NodeId from, NodeId to);

  /// Invoke fn(id, position) for every point with dist2(position, center)
  /// <= radius2 (closed disk, exact squared test — same contract as
  /// GridIndex::for_each_in_disk_squared). Returns the number of grid cells
  /// visited, for the caller's observability counters.
  std::size_t for_each_in_disk_squared(
      Vec2 center, double radius2,
      const std::function<void(NodeId, Vec2)>& fn) const;

  /// O(1) estimate of how many points a disk query would touch, from the
  /// cell count of the walk rectangle and the average cell occupancy. Used
  /// by the engine's incremental-vs-full fallback heuristic; never an
  /// undercount bound, just a density estimate.
  [[nodiscard]] std::size_t estimate_in_disk(Vec2 center, double radius) const;

  /// Nearest point to \p center other than \p exclude, by expanding-ring
  /// search; ties break toward the smaller id (deterministic, matching
  /// GridIndex::nearest). kInvalidNode when no eligible point exists.
  [[nodiscard]] NodeId nearest(Vec2 center, NodeId exclude = kInvalidNode) const;

  /// FNV-1a over (id, position bits, cell key) of every present point in
  /// ascending id order — a pure function of logical content, independent
  /// of per-cell bucket ordering and insertion history. Two grids holding
  /// the same points at the same cell size (e.g. an evolved grid and one
  /// rebuilt by Scenario::restore) checksum identically; snapshot tests
  /// use this to witness grid-occupancy equivalence.
  [[nodiscard]] std::uint64_t content_checksum() const;

  /// Lifetime operation counters (reset by clear()).
  [[nodiscard]] const GridStats& stats() const { return stats_; }

 private:
  /// Cells are keyed by their packed (cx, cy) coordinate. The pack wraps
  /// coordinates to 32 bits; a wrap collision merely co-buckets two far
  /// apart cells, and the exact distance test rejects their points.
  using CellKey = std::uint64_t;

  [[nodiscard]] static CellKey pack(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] std::int64_t coord(double x) const;
  [[nodiscard]] CellKey key_of(Vec2 p) const;
  void detach_from_cell(NodeId id);

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<NodeId>> cells_;
  // Per-id mirrors (indexed by id, grown on demand).
  std::vector<Vec2> pos_;
  std::vector<CellKey> key_;
  std::vector<std::uint8_t> present_;
  // Mutable: const queries still count themselves (relaxed atomics).
  mutable GridStats stats_;
};

}  // namespace rim::geom
