#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/aabb.hpp"
#include "rim/geom/vec2.hpp"

/// \file kdtree.hpp
/// Static 2-d tree over a fixed point set.
///
/// Complements GridIndex: the kd-tree keeps logarithmic nearest-neighbour
/// queries even on wildly non-uniform inputs (exponential chains), where a
/// uniform grid degenerates. Immutable after construction; queries are
/// thread-safe.

namespace rim::geom {

class KdTree {
 public:
  /// Build over \p points (indexed by NodeId). The caller keeps ownership.
  explicit KdTree(std::span<const Vec2> points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Nearest point to \p query, excluding \p exclude. Ties break toward the
  /// smaller id. Returns kInvalidNode when no eligible point exists.
  [[nodiscard]] NodeId nearest(Vec2 query, NodeId exclude = kInvalidNode) const;

  /// The k nearest points to \p query (excluding \p exclude), closest first;
  /// fewer if the set is smaller. Deterministic under distance ties.
  [[nodiscard]] std::vector<NodeId> k_nearest(Vec2 query, std::size_t k,
                                              NodeId exclude = kInvalidNode) const;

  /// Invoke \p fn(id) for every point within closed distance \p radius.
  void for_each_in_disk(Vec2 center, double radius,
                        const std::function<void(NodeId)>& fn) const;

 private:
  struct Node {
    Aabb box;
    std::uint32_t begin = 0;   // range into order_
    std::uint32_t end = 0;
    std::int32_t left = -1;    // child indices, -1 for leaf
    std::int32_t right = -1;
  };

  static constexpr std::size_t kLeafSize = 16;

  std::int32_t build(std::uint32_t begin, std::uint32_t end);

  std::span<const Vec2> points_;
  std::vector<NodeId> order_;  // permutation of ids, partitioned by the tree
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace rim::geom
