#include "rim/geom/kdtree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace rim::geom {

KdTree::KdTree(std::span<const Vec2> points) : points_(points) {
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), NodeId{0});
  if (!order_.empty()) {
    nodes_.reserve(2 * points_.size() / kLeafSize + 2);
    root_ = build(0, static_cast<std::uint32_t>(order_.size()));
  }
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  node.box = Aabb{points_[order_[begin]], points_[order_[begin]]};
  for (std::uint32_t i = begin + 1; i < end; ++i) node.box.expand(points_[order_[i]]);

  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeafSize) return index;

  const bool split_x = node.box.width() >= node.box.height();
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](NodeId a, NodeId b) {
                     return split_x ? points_[a].x < points_[b].x
                                    : points_[a].y < points_[b].y;
                   });
  const std::int32_t left = build(begin, mid);
  const std::int32_t right = build(mid, end);
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

NodeId KdTree::nearest(Vec2 query, NodeId exclude) const {
  if (root_ < 0) return kInvalidNode;
  NodeId best = kInvalidNode;
  double best_d2 = std::numeric_limits<double>::infinity();

  // Explicit stack; depth is O(log n) but sizing generously is cheap.
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.box.dist2_to(query) > best_d2) continue;
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const NodeId id = order_[i];
        if (id == exclude) continue;
        const double d2 = dist2(points_[id], query);
        if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
          best_d2 = d2;
          best = id;
        }
      }
    } else {
      // Visit the closer child first for better pruning.
      const double dl = nodes_[static_cast<std::size_t>(node.left)].box.dist2_to(query);
      const double dr = nodes_[static_cast<std::size_t>(node.right)].box.dist2_to(query);
      if (dl < dr) {
        stack.push_back(node.right);
        stack.push_back(node.left);
      } else {
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
  }
  return best;
}

std::vector<NodeId> KdTree::k_nearest(Vec2 query, std::size_t k, NodeId exclude) const {
  std::vector<NodeId> result;
  if (root_ < 0 || k == 0) return result;

  // (distance², id) max-heap of current best k.
  using Entry = std::pair<double, NodeId>;
  std::vector<Entry> heap;
  const auto worse = [](const Entry& a, const Entry& b) {
    return a.first < b.first || (a.first == b.first && a.second < b.second);
  };

  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (heap.size() == k && node.box.dist2_to(query) > heap.front().first) continue;
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const NodeId id = order_[i];
        if (id == exclude) continue;
        const Entry e{dist2(points_[id], query), id};
        if (heap.size() < k) {
          heap.push_back(e);
          std::push_heap(heap.begin(), heap.end(), worse);
        } else if (worse(e, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), worse);
          heap.back() = e;
          std::push_heap(heap.begin(), heap.end(), worse);
        }
      }
    } else {
      const double dl = nodes_[static_cast<std::size_t>(node.left)].box.dist2_to(query);
      const double dr = nodes_[static_cast<std::size_t>(node.right)].box.dist2_to(query);
      if (dl < dr) {
        stack.push_back(node.right);
        stack.push_back(node.left);
      } else {
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), worse);
  result.reserve(heap.size());
  for (const Entry& e : heap) result.push_back(e.second);
  return result;
}

void KdTree::for_each_in_disk(Vec2 center, double radius,
                              const std::function<void(NodeId)>& fn) const {
  if (root_ < 0 || radius < 0.0) return;
  const double r2 = radius * radius;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.box.dist2_to(center) > r2) continue;
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const NodeId id = order_[i];
        if (dist2(points_[id], center) <= r2) fn(id);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

}  // namespace rim::geom
