#include "rim/geom/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "rim/geom/aabb.hpp"

namespace rim::geom {

bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  // Standard 3x3 incircle determinant with translated coordinates; positive
  // for d strictly inside when abc is counter-clockwise.
  const double ax = a.x - d.x;
  const double ay = a.y - d.y;
  const double bx = b.x - d.x;
  const double by = b.y - d.y;
  const double cx = c.x - d.x;
  const double cy = c.y - d.y;
  const double det = (ax * ax + ay * ay) * (bx * cy - cx * by) -
                     (bx * bx + by * by) * (ax * cy - cx * ay) +
                     (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

namespace {

struct WorkTriangle {
  std::array<NodeId, 3> v;
  bool alive = true;
};

/// Canonical (sorted) edge key for the cavity-boundary bookkeeping.
std::pair<NodeId, NodeId> edge_key(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

Delaunay::Delaunay(std::span<const Vec2> points) : edge_graph_(points.size()) {
  const std::size_t n = points.size();
  if (n < 2) return;
  if (n == 2) {
    if (!(points[0] == points[1])) edge_graph_.add_edge(0, 1);
    return;
  }

  // Working coordinates: real points followed by the three super-triangle
  // vertices, chosen far outside the bounding box.
  std::vector<Vec2> coords(points.begin(), points.end());
  const Aabb box = bounding_box(points);
  const double span = std::max({box.width(), box.height(), 1.0});
  const Vec2 center = midpoint(box.lo, box.hi);
  const NodeId s0 = static_cast<NodeId>(n);
  const NodeId s1 = static_cast<NodeId>(n + 1);
  const NodeId s2 = static_cast<NodeId>(n + 2);
  coords.push_back({center.x - 30.0 * span, center.y - 10.0 * span});
  coords.push_back({center.x + 30.0 * span, center.y - 10.0 * span});
  coords.push_back({center.x, center.y + 30.0 * span});

  std::vector<WorkTriangle> work;
  work.push_back({{s0, s1, s2}, true});

  // Deterministic insertion order: by node id.
  for (NodeId p = 0; p < n; ++p) {
    // Cavity: all triangles whose circumcircle contains p. Boundary edges
    // of the cavity appear exactly once across the bad triangles.
    std::map<std::pair<NodeId, NodeId>, int> edge_count;
    for (WorkTriangle& t : work) {
      if (!t.alive) continue;
      if (in_circumcircle(coords[t.v[0]], coords[t.v[1]], coords[t.v[2]],
                          coords[p])) {
        t.alive = false;
        ++edge_count[edge_key(t.v[0], t.v[1])];
        ++edge_count[edge_key(t.v[1], t.v[2])];
        ++edge_count[edge_key(t.v[2], t.v[0])];
      }
    }
    // Coincident/degenerate point falling in no circumcircle: skip (it will
    // simply be absent from the triangulation, like a duplicate).
    if (edge_count.empty()) continue;
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;  // interior edge of the cavity
      // New triangle (a, b, p), oriented CCW.
      const auto [a, b] = edge;
      const double orient =
          cross(coords[b] - coords[a], coords[p] - coords[a]);
      if (orient > 0.0) {
        work.push_back({{a, b, p}, true});
      } else {
        work.push_back({{b, a, p}, true});
      }
    }
    // Compact periodically so the dead-triangle scan stays linear-ish.
    if (work.size() > 4 * n) {
      std::erase_if(work, [](const WorkTriangle& t) { return !t.alive; });
    }
  }

  for (const WorkTriangle& t : work) {
    if (!t.alive) continue;
    if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) continue;  // super vertex
    triangles_.push_back(Triangle{t.v});
    edge_graph_.add_edge(t.v[0], t.v[1]);
    edge_graph_.add_edge(t.v[1], t.v[2]);
    edge_graph_.add_edge(t.v[2], t.v[0]);
  }

  // All-collinear input (e.g. a highway instance embedded on the x-axis)
  // yields no real triangle; the limiting Delaunay graph is the path along
  // the sorted points, which we emit explicitly.
  if (triangles_.empty() && n >= 2) {
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return points[a] < points[b] || (points[a] == points[b] && a < b);
    });
    for (std::size_t i = 1; i < n; ++i) {
      if (points[order[i - 1]] == points[order[i]]) continue;  // duplicates
      edge_graph_.add_edge(order[i - 1], order[i]);
    }
  }
}

graph::Graph unit_delaunay(std::span<const Vec2> points, double radius) {
  const Delaunay del(points);
  graph::Graph out(points.size());
  const double r2 = radius * radius;
  for (graph::Edge e : del.edges().edges()) {
    if (dist2(points[e.u], points[e.v]) <= r2) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace rim::geom
