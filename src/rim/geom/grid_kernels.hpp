#pragma once

#include <atomic>
#include <cstdint>

#include "rim/common/types.hpp"
#include "rim/geom/dynamic_grid.hpp"
#include "rim/geom/vec2.hpp"

/// \file grid_kernels.hpp
/// The vectorised disk-coverage kernels of the incremental engine.
///
/// core::Scenario's hot loops are three shapes of the same exact
/// containment test over DynamicGrid cells:
///
///  - count_covering: receiver-centric recount — how many registered disks
///    cover one point (Definition 3.1 for a single v);
///  - apply_disk_delta: the ±1 symmetric-difference update when one
///    transmitter's disk changes (the paper's robustness property);
///  - accumulate_covered: transmitter-centric scatter for the sharded full
///    evaluation.
///
/// Each runs the simd.hpp kernels over the grid's per-cell SoA columns and
/// has a `_scalar` twin built from the scalar reference kernels; the twins
/// are bit-identical (integer counts of exact predicates — see
/// tests/simd_test.cpp) and the scalar forms double as documentation of
/// the semantics, which are exactly those of the former std::function
/// loops over for_each_in_disk_squared().

namespace rim::geom {

/// Result of one receiver-centric coverage count.
struct CoverageResult {
  std::uint32_t covered = 0;  ///< points whose registered disk covers the
                              ///< receiver (weight > 0 && d2 <= weight)
  std::uint64_t visited = 0;  ///< candidate points with d2 <= query_r2
  std::size_t cells = 0;      ///< grid cells visited
};

/// Count the points (other than \p exclude) whose registered weight (their
/// squared radius) covers \p receiver, scanning the disk of \p query_r2
/// around it. \p query_r2 must be >= every registered weight (the engine
/// passes its tracked max) so no coverer lies outside the scan.
[[nodiscard]] CoverageResult count_covering(const DynamicGrid& grid,
                                            Vec2 receiver, double query_r2,
                                            NodeId exclude);
/// Scalar reference twin of count_covering (bit-identical).
[[nodiscard]] CoverageResult count_covering_scalar(const DynamicGrid& grid,
                                                   Vec2 receiver,
                                                   double query_r2,
                                                   NodeId exclude);

/// Result of one disk-delta application.
struct DeltaResult {
  std::uint64_t visited = 0;  ///< candidate points with d2 <= query disk
  std::size_t cells = 0;      ///< grid cells visited
};

/// Apply the symmetric-difference delta of a transmitter's disk changing
/// from (center, old_r2) to (center, new_r2): every point v != exclude
/// gains 1 in interference[v] when it entered the disk and loses 1 when it
/// left. Containment requires a positive radius (a radius-0 node does not
/// transmit). interference is indexed by node id.
DeltaResult apply_disk_delta(const DynamicGrid& grid, Vec2 center,
                             double old_r2, double new_r2, NodeId exclude,
                             std::uint32_t* interference);
/// Scalar reference twin of apply_disk_delta (bit-identical).
DeltaResult apply_disk_delta_scalar(const DynamicGrid& grid, Vec2 center,
                                    double old_r2, double new_r2,
                                    NodeId exclude,
                                    std::uint32_t* interference);

/// Transmitter-centric accumulation for the sharded full evaluation: for
/// every point v != exclude with d2(v, center) <= r2 (and r2 > 0),
/// increment covered[v] (relaxed). Returns cells visited.
std::size_t accumulate_covered(const DynamicGrid& grid, Vec2 center,
                               double r2, NodeId exclude,
                               std::atomic<std::uint32_t>* covered);

/// Transmitter-centric SINR scatter (DESIGN.md §12): one transmitter at
/// \p center with precomputed emitted power \p power (= kappa * r2^h) and
/// far-field cutoff \p cutoff2 (= r2 * cutoff_factor) adds, for every
/// registered point v with 0 < d2 <= cutoff2,
///
///   power_out[v] += power / d2^half_alpha
///
/// and increments significant[v] when that contribution is >= \p sig. The
/// d2 > 0 test excludes the transmitter's own lane (and coincident nodes,
/// the kernel-layer convention of simd::sinr_scatter_scalar), so no
/// exclude id is needed. Serial by design: the caller owns determinism by
/// scattering transmitters in ascending id order, which fixes the add
/// order into every power_out[v] — each node occupies exactly one grid
/// lane, so one transmitter touches each receiver at most once. Returns
/// cells visited.
std::size_t accumulate_path_loss(const DynamicGrid& grid, Vec2 center,
                                 double cutoff2, double power, int half_alpha,
                                 double sig, double* power_out,
                                 std::uint32_t* significant);
/// Scalar reference twin of accumulate_path_loss (bit-identical).
std::size_t accumulate_path_loss_scalar(const DynamicGrid& grid, Vec2 center,
                                        double cutoff2, double power,
                                        int half_alpha, double sig,
                                        double* power_out,
                                        std::uint32_t* significant);

}  // namespace rim::geom
