#pragma once

#include "rim/geom/vec2.hpp"

/// \file disk.hpp
/// Closed disks D(c, r) — the interference regions of the paper's model:
/// a node u transmitting with range r_u affects exactly the nodes inside
/// D(u, r_u) (Section 3).

namespace rim::geom {

/// A closed disk with center \p center and radius \p radius.
struct Disk {
  Vec2 center;
  double radius = 0.0;

  /// Containment test. The disk is closed: points exactly on the boundary
  /// count as covered, matching Definition 3.1 ("v \in D(u, r_u)").
  [[nodiscard]] bool contains(Vec2 p) const {
    return dist2(center, p) <= radius * radius;
  }

  /// True when the two closed disks share at least one point.
  [[nodiscard]] bool intersects(const Disk& other) const {
    const double rr = radius + other.radius;
    return dist2(center, other.center) <= rr * rr;
  }
};

/// The smallest disk through points a and b (diametral disk). Used by the
/// Gabriel-graph test: {a,b} is a Gabriel edge iff this disk is empty of
/// other nodes.
[[nodiscard]] inline Disk diametral_disk(Vec2 a, Vec2 b) {
  return Disk{midpoint(a, b), dist(a, b) * 0.5};
}

}  // namespace rim::geom
