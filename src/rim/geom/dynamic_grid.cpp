#include "rim/geom/dynamic_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

namespace rim::geom {

io::Json GridStats::to_json() const {
  io::JsonObject o;
  o["inserts"] = inserts.to_json();
  o["erases"] = erases.to_json();
  o["moves"] = moves.to_json();
  o["relabels"] = relabels.to_json();
  o["disk_queries"] = disk_queries.to_json();
  o["nearest_queries"] = nearest_queries.to_json();
  return io::Json(std::move(o));
}

DynamicGrid::DynamicGrid(double cell_size) : cell_size_(cell_size) {
  assert(cell_size_ > 0.0);
}

void DynamicGrid::clear(double cell_size) {
  assert(cell_size > 0.0);
  cell_size_ = cell_size;
  count_ = 0;
  cells_.clear();
  pos_.clear();
  key_.clear();
  present_.clear();
  stats_ = GridStats{};
}

std::int64_t DynamicGrid::coord(double x) const {
  return static_cast<std::int64_t>(std::floor(x / cell_size_));
}

DynamicGrid::CellKey DynamicGrid::key_of(Vec2 p) const {
  return pack(coord(p.x), coord(p.y));
}

void DynamicGrid::insert(NodeId id, Vec2 p) {
  assert(!contains(id));
  ++stats_.inserts;
  if (id >= present_.size()) {
    pos_.resize(id + 1);
    key_.resize(id + 1);
    present_.resize(id + 1, 0);
  }
  pos_[id] = p;
  key_[id] = key_of(p);
  present_[id] = 1;
  cells_[key_[id]].push_back(id);
  ++count_;
}

void DynamicGrid::detach_from_cell(NodeId id) {
  const auto it = cells_.find(key_[id]);
  assert(it != cells_.end());
  auto& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), id);
  assert(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) cells_.erase(it);
}

void DynamicGrid::erase(NodeId id) {
  assert(contains(id));
  ++stats_.erases;
  detach_from_cell(id);
  present_[id] = 0;
  --count_;
}

void DynamicGrid::move(NodeId id, Vec2 p) {
  assert(contains(id));
  ++stats_.moves;
  const CellKey key = key_of(p);
  if (key != key_[id]) {
    detach_from_cell(id);
    key_[id] = key;
    cells_[key].push_back(id);
  }
  pos_[id] = p;
}

void DynamicGrid::relabel(NodeId from, NodeId to) {
  assert(contains(from) && !contains(to));
  ++stats_.relabels;
  auto& bucket = cells_[key_[from]];
  *std::find(bucket.begin(), bucket.end(), from) = to;
  if (to >= present_.size()) {
    pos_.resize(to + 1);
    key_.resize(to + 1);
    present_.resize(to + 1, 0);
  }
  pos_[to] = pos_[from];
  key_[to] = key_[from];
  present_[to] = 1;
  present_[from] = 0;
}

std::size_t DynamicGrid::for_each_in_disk_squared(
    Vec2 center, double radius2,
    const std::function<void(NodeId, Vec2)>& fn) const {
  ++stats_.disk_queries;
  if (count_ == 0 || radius2 < 0.0) return 0;
  // Same ulp inflation as GridIndex: a point whose exact squared distance
  // equals radius2 must never fall outside the visited cells.
  const double walk = std::sqrt(radius2) * (1.0 + 4e-16) +
                      std::numeric_limits<double>::denorm_min();
  const std::int64_t lox = coord(center.x - walk);
  const std::int64_t hix = coord(center.x + walk);
  const std::int64_t loy = coord(center.y - walk);
  const std::int64_t hiy = coord(center.y + walk);
  const auto span_x = static_cast<double>(hix - lox + 1);
  const auto span_y = static_cast<double>(hiy - loy + 1);
  std::size_t cells_visited = 0;
  // When the walk rectangle holds more cells than are occupied, scanning
  // the occupied cells directly is cheaper (and bounds a huge-radius query
  // by O(points) instead of O(rectangle area)).
  if (span_x * span_y > static_cast<double>(cells_.size())) {
    for (const auto& [key, bucket] : cells_) {
      ++cells_visited;
      for (NodeId id : bucket) {
        if (dist2(pos_[id], center) <= radius2) fn(id, pos_[id]);
      }
    }
    return cells_visited;
  }
  for (std::int64_t cy = loy; cy <= hiy; ++cy) {
    for (std::int64_t cx = lox; cx <= hix; ++cx) {
      const auto it = cells_.find(pack(cx, cy));
      if (it == cells_.end()) continue;
      ++cells_visited;
      for (NodeId id : it->second) {
        if (dist2(pos_[id], center) <= radius2) fn(id, pos_[id]);
      }
    }
  }
  return cells_visited;
}

std::size_t DynamicGrid::estimate_in_disk(Vec2 center, double radius) const {
  (void)center;
  if (count_ == 0 || radius < 0.0) return 0;
  const double cells_across = std::floor(2.0 * radius / cell_size_) + 1.0;
  const double rect_cells = cells_across * cells_across;
  const auto occupied = static_cast<double>(cells_.size());
  if (rect_cells >= occupied) return count_;
  const double estimate =
      rect_cells * static_cast<double>(count_) / occupied;
  return static_cast<std::size_t>(
      std::min(estimate, static_cast<double>(count_)));
}

NodeId DynamicGrid::nearest(Vec2 center, NodeId exclude) const {
  ++stats_.nearest_queries;
  if (count_ == 0 || (count_ == 1 && contains(exclude))) return kInvalidNode;
  double radius = cell_size_;
  while (true) {
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    // A walk that degenerates to scanning every occupied cell has seen all
    // points, so its best candidate is certainly the nearest.
    const double walk_cells =
        (std::floor(2.0 * radius / cell_size_) + 1.0) *
        (std::floor(2.0 * radius / cell_size_) + 1.0);
    for_each_in_disk_squared(center, radius * radius, [&](NodeId id, Vec2 p) {
      if (id == exclude) return;
      const double d2 = dist2(p, center);
      if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
        best_d2 = d2;
        best = id;
      }
    });
    if (best != kInvalidNode && best_d2 <= radius * radius) return best;
    if (walk_cells > static_cast<double>(cells_.size()) &&
        best != kInvalidNode) {
      return best;
    }
    radius *= 2.0;
  }
}

std::uint64_t DynamicGrid::content_checksum() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix64 = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  };
  mix64(static_cast<std::uint64_t>(count_));
  std::uint64_t cell_bits = 0;
  std::memcpy(&cell_bits, &cell_size_, sizeof cell_bits);
  mix64(cell_bits);
  for (NodeId id = 0; id < present_.size(); ++id) {
    if (present_[id] == 0) continue;
    mix64(id);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &pos_[id].x, sizeof bits);
    mix64(bits);
    std::memcpy(&bits, &pos_[id].y, sizeof bits);
    mix64(bits);
    mix64(key_[id]);
  }
  return h;
}

}  // namespace rim::geom
