#include "rim/geom/dynamic_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rim::geom {

io::Json GridStats::to_json() const {
  io::JsonObject o;
  o["inserts"] = inserts.to_json();
  o["erases"] = erases.to_json();
  o["moves"] = moves.to_json();
  o["relabels"] = relabels.to_json();
  o["disk_queries"] = disk_queries.to_json();
  o["nearest_queries"] = nearest_queries.to_json();
  return io::Json(std::move(o));
}

DynamicGrid::DynamicGrid(double cell_size) : cell_size_(cell_size) {
  assert(cell_size_ > 0.0);
}

void DynamicGrid::clear(double cell_size) {
  assert(cell_size > 0.0);
  cell_size_ = cell_size;
  count_ = 0;
  cells_.clear();
  pos_.clear();
  key_.clear();
  idx_.clear();
  weight_.clear();
  present_.clear();
  stats_ = GridStats{};
}

std::int64_t DynamicGrid::coord(double x) const {
  return static_cast<std::int64_t>(std::floor(x / cell_size_));
}

DynamicGrid::CellKey DynamicGrid::key_of(Vec2 p) const {
  return pack(coord(p.x), coord(p.y));
}

void DynamicGrid::reserve(std::size_t nodes) {
  pos_.reserve(nodes);
  key_.reserve(nodes);
  idx_.reserve(nodes);
  weight_.reserve(nodes);
  present_.reserve(nodes);
  // Occupied-cell count is bounded by the point count; reserving that many
  // buckets over-provisions sparse instances but caps rehashes at zero.
  cells_.reserve(nodes);
}

void DynamicGrid::ensure_id(NodeId id) {
  if (id >= present_.size()) {
    pos_.resize(id + 1);
    key_.resize(id + 1);
    idx_.resize(id + 1);
    weight_.resize(id + 1, 0.0);
    present_.resize(id + 1, 0);
  }
}

void DynamicGrid::attach_to_cell(NodeId id) {
  Cell& cell = cells_[key_[id]];
  idx_[id] = static_cast<std::uint32_t>(cell.ids.size());
  cell.xs.push_back(pos_[id].x);
  cell.ys.push_back(pos_[id].y);
  cell.ws.push_back(weight_[id]);
  cell.ids.push_back(id);
}

void DynamicGrid::detach_from_cell(NodeId id) {
  const auto it = cells_.find(key_[id]);
  assert(it != cells_.end());
  Cell& cell = it->second;
  const std::size_t k = idx_[id];
  assert(k < cell.ids.size() && cell.ids[k] == id);
  const std::size_t last = cell.ids.size() - 1;
  if (k != last) {
    // Swap-with-last across all four columns, keeping them in lockstep.
    cell.xs[k] = cell.xs[last];
    cell.ys[k] = cell.ys[last];
    cell.ws[k] = cell.ws[last];
    cell.ids[k] = cell.ids[last];
    idx_[cell.ids[k]] = static_cast<std::uint32_t>(k);
  }
  cell.xs.pop_back();
  cell.ys.pop_back();
  cell.ws.pop_back();
  cell.ids.pop_back();
  if (cell.ids.empty()) cells_.erase(it);
}

void DynamicGrid::insert(NodeId id, Vec2 p, double weight) {
  assert(!contains(id));
  ++stats_.inserts;
  ensure_id(id);
  pos_[id] = p;
  key_[id] = key_of(p);
  weight_[id] = weight;
  present_[id] = 1;
  attach_to_cell(id);
  ++count_;
}

void DynamicGrid::erase(NodeId id) {
  assert(contains(id));
  ++stats_.erases;
  detach_from_cell(id);
  present_[id] = 0;
  --count_;
}

void DynamicGrid::move(NodeId id, Vec2 p) {
  assert(contains(id));
  ++stats_.moves;
  const CellKey key = key_of(p);
  if (key != key_[id]) {
    detach_from_cell(id);
    pos_[id] = p;
    key_[id] = key;
    attach_to_cell(id);
    return;
  }
  pos_[id] = p;
  Cell& cell = cells_[key_[id]];
  cell.xs[idx_[id]] = p.x;
  cell.ys[idx_[id]] = p.y;
}

void DynamicGrid::set_weight(NodeId id, double weight) {
  assert(contains(id));
  weight_[id] = weight;
  const auto it = cells_.find(key_[id]);
  assert(it != cells_.end());
  it->second.ws[idx_[id]] = weight;
}

void DynamicGrid::relabel(NodeId from, NodeId to) {
  assert(contains(from) && !contains(to));
  ++stats_.relabels;
  cells_[key_[from]].ids[idx_[from]] = to;
  ensure_id(to);
  pos_[to] = pos_[from];
  key_[to] = key_[from];
  idx_[to] = idx_[from];
  weight_[to] = weight_[from];
  present_[to] = 1;
  present_[from] = 0;
}

std::size_t DynamicGrid::for_each_in_disk_squared(
    Vec2 center, double radius2,
    const std::function<void(NodeId, Vec2)>& fn) const {
  return for_each_cell_in_disk(center, radius2, [&](const CellView& cell) {
    for (std::size_t i = 0; i < cell.count; ++i) {
      const Vec2 p{cell.xs[i], cell.ys[i]};
      if (dist2(p, center) <= radius2) fn(cell.ids[i], p);
    }
  });
}

std::size_t DynamicGrid::estimate_in_disk(Vec2 center, double radius) const {
  (void)center;
  if (count_ == 0 || radius < 0.0) return 0;
  const double cells_across = std::floor(2.0 * radius / cell_size_) + 1.0;
  const double rect_cells = cells_across * cells_across;
  const auto occupied = static_cast<double>(cells_.size());
  if (rect_cells >= occupied) return count_;
  const double estimate =
      rect_cells * static_cast<double>(count_) / occupied;
  return static_cast<std::size_t>(
      std::min(estimate, static_cast<double>(count_)));
}

NodeId DynamicGrid::nearest(Vec2 center, NodeId exclude) const {
  ++stats_.nearest_queries;
  if (count_ == 0 || (count_ == 1 && contains(exclude))) return kInvalidNode;
  double radius = cell_size_;
  while (true) {
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    // A walk that degenerates to scanning every occupied cell has seen all
    // points, so its best candidate is certainly the nearest.
    const double walk_cells =
        (std::floor(2.0 * radius / cell_size_) + 1.0) *
        (std::floor(2.0 * radius / cell_size_) + 1.0);
    for_each_in_disk_squared(center, radius * radius, [&](NodeId id, Vec2 p) {
      if (id == exclude) return;
      const double d2 = dist2(p, center);
      if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
        best_d2 = d2;
        best = id;
      }
    });
    if (best != kInvalidNode && best_d2 <= radius * radius) return best;
    if (walk_cells > static_cast<double>(cells_.size()) &&
        best != kInvalidNode) {
      return best;
    }
    radius *= 2.0;
  }
}

std::uint64_t DynamicGrid::content_checksum() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix64 = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  };
  mix64(static_cast<std::uint64_t>(count_));
  std::uint64_t cell_bits = 0;
  std::memcpy(&cell_bits, &cell_size_, sizeof cell_bits);
  mix64(cell_bits);
  for (NodeId id = 0; id < present_.size(); ++id) {
    if (present_[id] == 0) continue;
    mix64(id);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &pos_[id].x, sizeof bits);
    mix64(bits);
    std::memcpy(&bits, &pos_[id].y, sizeof bits);
    mix64(bits);
    mix64(key_[id]);
  }
  return h;
}

}  // namespace rim::geom
