#pragma once

#include <array>
#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file delaunay.hpp
/// Delaunay triangulation (incremental Bowyer–Watson).
///
/// Role in the library: the Delaunay triangulation contains the Gabriel
/// graph, the RNG and the Euclidean MST, so it provides (a) an independent
/// correctness oracle for those constructions and (b) the `udel`
/// (unit-Delaunay) topology — the classic planar localized structure of Li,
/// Calinescu, Wan (INFOCOM'02) used by geographic routing.
///
/// The implementation is the O(n²) point-insertion Bowyer–Watson with a
/// super-triangle; robust enough for the experiment scales used here
/// (degenerate cocircular quadruples resolve arbitrarily but
/// deterministically).

namespace rim::geom {

struct Triangle {
  std::array<NodeId, 3> v;  ///< vertex indices, CCW
};

class Delaunay {
 public:
  /// Triangulate \p points (>= 3 distinct, non-collinear points give a
  /// full triangulation; degenerate inputs give an empty triangle list but
  /// still a valid — possibly empty — edge graph).
  explicit Delaunay(std::span<const Vec2> points);

  /// Triangles of the final triangulation (super-triangle removed).
  [[nodiscard]] const std::vector<Triangle>& triangles() const { return triangles_; }

  /// Undirected edge graph of the triangulation.
  [[nodiscard]] const graph::Graph& edges() const { return edge_graph_; }

 private:
  graph::Graph edge_graph_;
  std::vector<Triangle> triangles_;
};

/// True iff d lies strictly inside the circumcircle of CCW triangle abc.
[[nodiscard]] bool in_circumcircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// The unit-Delaunay topology: Delaunay edges no longer than \p radius,
/// i.e. Del ∩ UDG. Contains Gabriel(UDG) and hence preserves connectivity.
[[nodiscard]] graph::Graph unit_delaunay(std::span<const Vec2> points,
                                         double radius = 1.0);

}  // namespace rim::geom
