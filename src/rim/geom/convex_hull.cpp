#include "rim/geom/convex_hull.hpp"

#include <algorithm>
#include <numeric>

namespace rim::geom {

std::vector<NodeId> convex_hull(std::span<const Vec2> points) {
  const std::size_t n = points.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return points[a] < points[b] || (points[a] == points[b] && a < b);
  });
  // Drop exact duplicates (keep the smallest id at each position).
  order.erase(std::unique(order.begin(), order.end(),
                          [&](NodeId a, NodeId b) {
                            return points[a] == points[b];
                          }),
              order.end());
  if (order.size() <= 2) return order;

  const auto turns_right = [&](NodeId a, NodeId b, NodeId c) {
    return cross(points[b] - points[a], points[c] - points[a]) <= 0.0;
  };

  std::vector<NodeId> hull(2 * order.size());
  std::size_t k = 0;
  // Lower hull.
  for (NodeId id : order) {
    while (k >= 2 && turns_right(hull[k - 2], hull[k - 1], id)) --k;
    hull[k++] = id;
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (auto it = order.rbegin() + 1; it != order.rend(); ++it) {
    while (k >= lower_size && turns_right(hull[k - 2], hull[k - 1], *it)) --k;
    hull[k++] = *it;
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

bool hull_contains(std::span<const Vec2> points, std::span<const NodeId> hull,
                   Vec2 p) {
  if (hull.empty()) return false;
  if (hull.size() == 1) return points[hull[0]] == p;
  if (hull.size() == 2) {
    // Degenerate: on-segment test.
    const Vec2 a = points[hull[0]];
    const Vec2 b = points[hull[1]];
    if (cross(b - a, p - a) != 0.0) return false;
    const double t = dot(p - a, b - a);
    return t >= 0.0 && t <= norm2(b - a);
  }
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vec2 a = points[hull[i]];
    const Vec2 b = points[hull[(i + 1) % hull.size()]];
    if (cross(b - a, p - a) < 0.0) return false;  // strictly right of an edge
  }
  return true;
}

}  // namespace rim::geom
