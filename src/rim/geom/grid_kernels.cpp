#include "rim/geom/grid_kernels.hpp"

#include <algorithm>

#include "rim/simd/simd.hpp"

namespace rim::geom {

namespace {

/// Chunk length for the d2 staging buffer of the scatter kernels — small
/// enough to stay in L1, large enough to amortise the loop overhead.
constexpr std::size_t kChunk = 128;

/// Remove the excluded node's own lane contribution from a coverage count.
/// The SIMD pass counts every lane; the excluded node (when present and
/// inside the scanned disk) was certainly among them, because the walk
/// rectangle covers the whole query disk.
void subtract_exclude(const DynamicGrid& grid, Vec2 receiver, double query_r2,
                      NodeId exclude, CoverageResult& out) {
  if (exclude == kInvalidNode || !grid.contains(exclude)) return;
  const double d2 = dist2(grid.position(exclude), receiver);
  if (d2 > query_r2) return;
  --out.visited;
  const double w = grid.weight(exclude);
  if (w > 0.0 && d2 <= w) --out.covered;
}

template <typename CellKernel>
CoverageResult count_covering_impl(const DynamicGrid& grid, Vec2 receiver,
                                   double query_r2, NodeId exclude,
                                   CellKernel&& kernel) {
  CoverageResult out;
  out.cells = grid.for_each_cell_in_disk(
      receiver, query_r2, [&](const DynamicGrid::CellView& cell) {
        const simd::CoverageCounts counts =
            kernel(cell.xs, cell.ys, cell.ws, cell.count, receiver.x,
                   receiver.y, query_r2);
        out.visited += counts.visited;
        out.covered += static_cast<std::uint32_t>(counts.covered);
      });
  subtract_exclude(grid, receiver, query_r2, exclude, out);
  return out;
}

template <typename DistanceKernel>
DeltaResult apply_disk_delta_impl(const DynamicGrid& grid, Vec2 center,
                                  double old_r2, double new_r2,
                                  NodeId exclude, std::uint32_t* interference,
                                  DistanceKernel&& distances) {
  DeltaResult out;
  const double query_r2 = std::max(old_r2, new_r2);
  double d2[kChunk];
  out.cells = grid.for_each_cell_in_disk(
      center, query_r2, [&](const DynamicGrid::CellView& cell) {
        for (std::size_t base = 0; base < cell.count; base += kChunk) {
          const std::size_t m = std::min(kChunk, cell.count - base);
          distances(cell.xs + base, cell.ys + base, m, center.x, center.y,
                    d2);
          for (std::size_t k = 0; k < m; ++k) {
            if (d2[k] > query_r2) continue;
            const NodeId v = cell.ids[base + k];
            if (v == exclude) continue;
            ++out.visited;
            const bool in_old = old_r2 > 0.0 && d2[k] <= old_r2;
            const bool in_new = new_r2 > 0.0 && d2[k] <= new_r2;
            if (in_new && !in_old) {
              ++interference[v];
            } else if (in_old && !in_new) {
              --interference[v];
            }
          }
        }
      });
  return out;
}

}  // namespace

CoverageResult count_covering(const DynamicGrid& grid, Vec2 receiver,
                              double query_r2, NodeId exclude) {
  return count_covering_impl(
      grid, receiver, query_r2, exclude,
      [](const double* xs, const double* ys, const double* ws, std::size_t n,
         double cx, double cy, double q) {
        return simd::count_coverage(xs, ys, ws, n, cx, cy, q);
      });
}

CoverageResult count_covering_scalar(const DynamicGrid& grid, Vec2 receiver,
                                     double query_r2, NodeId exclude) {
  return count_covering_impl(
      grid, receiver, query_r2, exclude,
      [](const double* xs, const double* ys, const double* ws, std::size_t n,
         double cx, double cy, double q) {
        return simd::count_coverage_scalar(xs, ys, ws, n, cx, cy, q);
      });
}

DeltaResult apply_disk_delta(const DynamicGrid& grid, Vec2 center,
                             double old_r2, double new_r2, NodeId exclude,
                             std::uint32_t* interference) {
  return apply_disk_delta_impl(
      grid, center, old_r2, new_r2, exclude, interference,
      [](const double* xs, const double* ys, std::size_t n, double cx,
         double cy, double* out) {
        simd::squared_distances(xs, ys, n, cx, cy, out);
      });
}

DeltaResult apply_disk_delta_scalar(const DynamicGrid& grid, Vec2 center,
                                    double old_r2, double new_r2,
                                    NodeId exclude,
                                    std::uint32_t* interference) {
  return apply_disk_delta_impl(
      grid, center, old_r2, new_r2, exclude, interference,
      [](const double* xs, const double* ys, std::size_t n, double cx,
         double cy, double* out) {
        simd::squared_distances_scalar(xs, ys, n, cx, cy, out);
      });
}

std::size_t accumulate_covered(const DynamicGrid& grid, Vec2 center,
                               double r2, NodeId exclude,
                               std::atomic<std::uint32_t>* covered) {
  if (r2 <= 0.0) return 0;
  double d2[kChunk];
  return grid.for_each_cell_in_disk(
      center, r2, [&](const DynamicGrid::CellView& cell) {
        for (std::size_t base = 0; base < cell.count; base += kChunk) {
          const std::size_t m = std::min(kChunk, cell.count - base);
          simd::squared_distances(cell.xs + base, cell.ys + base, m, center.x,
                                  center.y, d2);
          for (std::size_t k = 0; k < m; ++k) {
            if (d2[k] > r2) continue;
            const NodeId v = cell.ids[base + k];
            if (v == exclude) continue;
            covered[v].fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
}

namespace {

template <typename ScatterKernel>
std::size_t accumulate_path_loss_impl(const DynamicGrid& grid, Vec2 center,
                                      double cutoff2, double power,
                                      int half_alpha, double sig,
                                      double* power_out,
                                      std::uint32_t* significant,
                                      ScatterKernel&& scatter) {
  if (cutoff2 <= 0.0 || power <= 0.0) return 0;
  double contrib[kChunk];
  return grid.for_each_cell_in_disk(
      center, cutoff2, [&](const DynamicGrid::CellView& cell) {
        for (std::size_t base = 0; base < cell.count; base += kChunk) {
          const std::size_t m = std::min(kChunk, cell.count - base);
          scatter(cell.xs + base, cell.ys + base, m, center.x, center.y,
                  cutoff2, power, half_alpha, contrib);
          for (std::size_t k = 0; k < m; ++k) {
            if (contrib[k] == 0.0) continue;  // ineligible lane
            const NodeId v = cell.ids[base + k];
            power_out[v] += contrib[k];
            if (contrib[k] >= sig) ++significant[v];
          }
        }
      });
}

}  // namespace

std::size_t accumulate_path_loss(const DynamicGrid& grid, Vec2 center,
                                 double cutoff2, double power, int half_alpha,
                                 double sig, double* power_out,
                                 std::uint32_t* significant) {
  return accumulate_path_loss_impl(
      grid, center, cutoff2, power, half_alpha, sig, power_out, significant,
      [](const double* xs, const double* ys, std::size_t n, double cx,
         double cy, double c2, double p, int h, double* out) {
        simd::sinr_scatter(xs, ys, n, cx, cy, c2, p, h, out);
      });
}

std::size_t accumulate_path_loss_scalar(const DynamicGrid& grid, Vec2 center,
                                        double cutoff2, double power,
                                        int half_alpha, double sig,
                                        double* power_out,
                                        std::uint32_t* significant) {
  return accumulate_path_loss_impl(
      grid, center, cutoff2, power, half_alpha, sig, power_out, significant,
      [](const double* xs, const double* ys, std::size_t n, double cx,
         double cy, double c2, double p, int h, double* out) {
        simd::sinr_scatter_scalar(xs, ys, n, cx, cy, c2, p, h, out);
      });
}

}  // namespace rim::geom
