#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/aabb.hpp"
#include "rim/geom/vec2.hpp"

/// \file grid_index.hpp
/// Uniform-grid spatial index over a fixed point set.
///
/// This is the workhorse accelerator behind Unit-Disk-Graph construction and
/// the fast interference evaluator: range queries with radius close to the
/// cell size touch O(1) cells in expectation for bounded-density inputs.
/// The structure is immutable after construction (points never move during
/// an experiment), which keeps queries lock-free and safe to run from many
/// threads concurrently.

namespace rim::geom {

class GridIndex {
 public:
  /// Build an index over \p points with square cells of side \p cell_size.
  /// \p cell_size must be positive. The points are referenced by index;
  /// the caller keeps ownership and must keep them alive and unmodified.
  GridIndex(std::span<const Vec2> points, double cell_size);

  /// Number of indexed points.
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  [[nodiscard]] double cell_size() const { return cell_size_; }

  /// Invoke \p fn(id) for every point within closed distance \p radius of
  /// \p center (including a point equal to center, if any).
  void for_each_in_disk(Vec2 center, double radius,
                        const std::function<void(NodeId)>& fn) const;

  /// Like for_each_in_disk but the containment test is dist2 <= radius2
  /// exactly (no sqrt roundtrip); the cell walk uses a conservatively
  /// inflated linear radius so boundary points are never missed.
  void for_each_in_disk_squared(Vec2 center, double radius2,
                                const std::function<void(NodeId)>& fn) const;

  /// Ids of all points within closed distance \p radius of \p center.
  [[nodiscard]] std::vector<NodeId> query_disk(Vec2 center, double radius) const;

  /// Count of points within closed distance \p radius of \p center.
  [[nodiscard]] std::size_t count_in_disk(Vec2 center, double radius) const;

  /// Nearest indexed point to \p center other than \p exclude
  /// (pass kInvalidNode to consider all points). Returns kInvalidNode when
  /// the index holds no eligible point. Ties are broken toward the smaller
  /// id, which keeps downstream topologies deterministic.
  [[nodiscard]] NodeId nearest(Vec2 center, NodeId exclude = kInvalidNode) const;

 private:
  struct CellCoord {
    std::int64_t cx;
    std::int64_t cy;
  };

  [[nodiscard]] CellCoord coord_of(Vec2 p) const;
  [[nodiscard]] std::size_t cell_of(CellCoord c) const;  // clamped linear index

  std::span<const Vec2> points_;
  double cell_size_;
  Aabb box_{};
  std::int64_t nx_ = 1;  // number of cells along x
  std::int64_t ny_ = 1;  // number of cells along y
  // CSR layout: ids of points in cell k are cell_points_[cell_start_[k] ..
  // cell_start_[k+1]).
  std::vector<std::uint32_t> cell_start_;
  std::vector<NodeId> cell_points_;
};

}  // namespace rim::geom
