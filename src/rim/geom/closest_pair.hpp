#pragma once

#include <span>
#include <utility>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"

/// \file closest_pair.hpp
/// Classic divide-and-conquer closest pair; useful both as a geometry
/// primitive (e.g. deciding grid cell sizes) and as a reference for tests.

namespace rim::geom {

struct ClosestPairResult {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double distance = 0.0;
};

/// O(n log n) closest pair of distinct points. Requires at least two points.
/// Deterministic: under distance ties, the lexicographically smallest id
/// pair wins.
[[nodiscard]] ClosestPairResult closest_pair(std::span<const Vec2> points);

/// O(n^2) reference implementation (used by tests as an oracle).
[[nodiscard]] ClosestPairResult closest_pair_brute(std::span<const Vec2> points);

}  // namespace rim::geom
