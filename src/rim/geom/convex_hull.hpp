#pragma once

#include <span>
#include <vector>

#include "rim/common/types.hpp"
#include "rim/geom/vec2.hpp"

/// \file convex_hull.hpp
/// Andrew's monotone-chain convex hull. Used by the Delaunay tests (hull
/// edges are always Delaunay edges) and by instance diagnostics.

namespace rim::geom {

/// Indices of the convex hull of \p points in counter-clockwise order,
/// starting from the lexicographically smallest point. Collinear points on
/// hull edges are excluded. Handles degenerate inputs: fewer than 3 points
/// (or all collinear) yield the extreme points only.
[[nodiscard]] std::vector<NodeId> convex_hull(std::span<const Vec2> points);

/// True iff p lies inside or on the boundary of the convex polygon
/// \p hull (CCW order, as returned by convex_hull).
[[nodiscard]] bool hull_contains(std::span<const Vec2> points,
                                 std::span<const NodeId> hull, Vec2 p);

}  // namespace rim::geom
