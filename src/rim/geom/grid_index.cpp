#include "rim/geom/grid_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rim::geom {

GridIndex::GridIndex(std::span<const Vec2> points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  assert(cell_size_ > 0.0);
  if (points_.empty()) {
    cell_start_.assign(2, 0);
    return;
  }
  box_ = bounding_box(points_);
  // Cap the grid so adversarially spread inputs (e.g. exponential chains)
  // cannot blow up memory or construction time; a coarser grid is merely
  // slower to query, never wrong. The cap scales with the point count so
  // building the index stays O(n). The fit test runs in double precision to
  // dodge int64 overflow when the requested cell size is absurdly small
  // relative to the extent.
  const double kMaxCells =
      std::min(double{1 << 22},
               std::max(64.0, 16.0 * static_cast<double>(points_.size())));
  while (std::max(1.0, std::floor(box_.width() / cell_size_) + 1.0) *
             std::max(1.0, std::floor(box_.height() / cell_size_) + 1.0) >
         kMaxCells) {
    cell_size_ *= 2.0;
  }
  nx_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(box_.width() / cell_size_)) + 1);
  ny_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(box_.height() / cell_size_)) + 1);

  const std::size_t cells = static_cast<std::size_t>(nx_ * ny_);
  std::vector<std::uint32_t> counts(cells, 0);
  for (const Vec2& p : points_) ++counts[cell_of(coord_of(p))];

  cell_start_.assign(cells + 1, 0);
  for (std::size_t k = 0; k < cells; ++k) {
    cell_start_[k + 1] = cell_start_[k] + counts[k];
  }
  cell_points_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (NodeId id = 0; id < points_.size(); ++id) {
    cell_points_[cursor[cell_of(coord_of(points_[id]))]++] = id;
  }
}

GridIndex::CellCoord GridIndex::coord_of(Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor((p.x - box_.lo.x) / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor((p.y - box_.lo.y) / cell_size_));
  return {std::clamp<std::int64_t>(cx, 0, nx_ - 1),
          std::clamp<std::int64_t>(cy, 0, ny_ - 1)};
}

std::size_t GridIndex::cell_of(CellCoord c) const {
  return static_cast<std::size_t>(c.cy * nx_ + c.cx);
}

void GridIndex::for_each_in_disk(Vec2 center, double radius,
                                 const std::function<void(NodeId)>& fn) const {
  if (points_.empty() || radius < 0.0) return;
  const double r2 = radius * radius;
  const CellCoord lo = coord_of({center.x - radius, center.y - radius});
  const CellCoord hi = coord_of({center.x + radius, center.y + radius});
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const std::size_t cell = cell_of({cx, cy});
      const std::uint32_t begin = cell_start_[cell];
      const std::uint32_t end = cell_start_[cell + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const NodeId id = cell_points_[i];
        if (dist2(points_[id], center) <= r2) fn(id);
      }
    }
  }
}

void GridIndex::for_each_in_disk_squared(Vec2 center, double radius2,
                                         const std::function<void(NodeId)>& fn) const {
  if (points_.empty() || radius2 < 0.0) return;
  // Inflate the walk radius by a couple of ulps so a point whose exact
  // squared distance equals radius2 can never fall outside the visited
  // cells; the exact dist2 test below rejects false positives.
  const double walk = std::sqrt(radius2) * (1.0 + 4e-16) +
                      std::numeric_limits<double>::denorm_min();
  const CellCoord lo = coord_of({center.x - walk, center.y - walk});
  const CellCoord hi = coord_of({center.x + walk, center.y + walk});
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const std::size_t cell = cell_of({cx, cy});
      const std::uint32_t begin = cell_start_[cell];
      const std::uint32_t end = cell_start_[cell + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const NodeId id = cell_points_[i];
        if (dist2(points_[id], center) <= radius2) fn(id);
      }
    }
  }
}

std::vector<NodeId> GridIndex::query_disk(Vec2 center, double radius) const {
  std::vector<NodeId> out;
  for_each_in_disk(center, radius, [&out](NodeId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t GridIndex::count_in_disk(Vec2 center, double radius) const {
  std::size_t count = 0;
  for_each_in_disk(center, radius, [&count](NodeId) { ++count; });
  return count;
}

NodeId GridIndex::nearest(Vec2 center, NodeId exclude) const {
  if (points_.empty()) return kInvalidNode;
  // Expanding-ring search: try radius = cell, 2*cell, 4*cell, ... and stop
  // as soon as a candidate is found whose distance is certainly minimal
  // (i.e. the found distance is covered by the searched radius).
  double radius = cell_size_;
  const double max_needed =
      std::hypot(box_.width(), box_.height()) + cell_size_;
  while (true) {
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    for_each_in_disk(center, radius, [&](NodeId id) {
      if (id == exclude) return;
      const double d2 = dist2(points_[id], center);
      if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
        best_d2 = d2;
        best = id;
      }
    });
    if (best != kInvalidNode && best_d2 <= radius * radius) return best;
    if (radius > max_needed) return best;
    radius *= 2.0;
  }
}

}  // namespace rim::geom
