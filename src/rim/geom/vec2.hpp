#pragma once

#include <cmath>
#include <compare>
#include <vector>

/// \file vec2.hpp
/// Plain 2-D vector/point value type and distance kernels.
///
/// Highway (1-D) instances are represented as points with y == 0, so every
/// algorithm in the library operates on the same point type.

namespace rim::geom {

/// A point (or displacement) in the Euclidean plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator*(double s, Vec2 a) { return {a.x * s, a.y * s}; }
  friend constexpr Vec2 operator/(Vec2 a, double s) { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  /// Lexicographic order (x, then y); used for deterministic tie-breaking.
  friend constexpr auto operator<=>(Vec2 a, Vec2 b) {
    if (auto c = a.x <=> b.x; c != 0) return c;
    return a.y <=> b.y;
  }
};

/// Dot product.
[[nodiscard]] constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the 3-D cross product; >0 when b is counter-clockwise of a.
[[nodiscard]] constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm. Prefer this in comparisons: it is exact for
/// representable coordinates and avoids the sqrt.
[[nodiscard]] constexpr double norm2(Vec2 a) { return dot(a, a); }

/// Euclidean norm.
[[nodiscard]] inline double norm(Vec2 a) { return std::sqrt(norm2(a)); }

/// Squared distance between two points.
[[nodiscard]] constexpr double dist2(Vec2 a, Vec2 b) { return norm2(a - b); }

/// Euclidean distance between two points.
[[nodiscard]] inline double dist(Vec2 a, Vec2 b) { return std::sqrt(dist2(a, b)); }

/// Midpoint of the segment ab.
[[nodiscard]] constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return (a + b) * 0.5; }

/// A deployment: node i of the network sits at points[i].
using PointSet = std::vector<Vec2>;

/// True when every point of the deployment lies on the x-axis, i.e. the
/// instance belongs to the highway model of the paper's Section 5.
[[nodiscard]] inline bool is_one_dimensional(const PointSet& points) {
  for (const Vec2& p : points) {
    if (p.y != 0.0) return false;
  }
  return true;
}

}  // namespace rim::geom
