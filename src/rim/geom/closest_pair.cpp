#include "rim/geom/closest_pair.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <vector>

namespace rim::geom {

namespace {

struct Candidate {
  double d2 = std::numeric_limits<double>::infinity();
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  void offer(double d2_new, NodeId x, NodeId y) {
    if (x > y) std::swap(x, y);
    if (d2_new < d2 || (d2_new == d2 && std::pair{x, y} < std::pair{a, b})) {
      d2 = d2_new;
      a = x;
      b = y;
    }
  }
};

// Recursive solve over ids[begin,end) sorted by x; `aux` is scratch for the
// merge by y.
void solve(std::span<const Vec2> pts, std::vector<NodeId>& ids,
           std::vector<NodeId>& aux, std::size_t begin, std::size_t end,
           Candidate& best) {
  const std::size_t count = end - begin;
  if (count <= 3) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = i + 1; j < end; ++j) {
        best.offer(dist2(pts[ids[i]], pts[ids[j]]), ids[i], ids[j]);
      }
    }
    std::sort(ids.begin() + static_cast<std::ptrdiff_t>(begin),
              ids.begin() + static_cast<std::ptrdiff_t>(end),
              [&](NodeId x, NodeId y) {
                return pts[x].y < pts[y].y || (pts[x].y == pts[y].y && x < y);
              });
    return;
  }
  const std::size_t mid = begin + count / 2;
  const double split_x = pts[ids[mid]].x;
  solve(pts, ids, aux, begin, mid, best);
  solve(pts, ids, aux, mid, end, best);

  // Merge the two halves by y into aux, then copy back.
  std::merge(ids.begin() + static_cast<std::ptrdiff_t>(begin),
             ids.begin() + static_cast<std::ptrdiff_t>(mid),
             ids.begin() + static_cast<std::ptrdiff_t>(mid),
             ids.begin() + static_cast<std::ptrdiff_t>(end),
             aux.begin() + static_cast<std::ptrdiff_t>(begin),
             [&](NodeId x, NodeId y) {
               return pts[x].y < pts[y].y || (pts[x].y == pts[y].y && x < y);
             });
  std::copy(aux.begin() + static_cast<std::ptrdiff_t>(begin),
            aux.begin() + static_cast<std::ptrdiff_t>(end),
            ids.begin() + static_cast<std::ptrdiff_t>(begin));

  // Strip: points within sqrt(best.d2) of the split line, checked against
  // the handful of strip successors by y.
  std::vector<NodeId> strip;
  for (std::size_t i = begin; i < end; ++i) {
    const double dx = pts[ids[i]].x - split_x;
    if (dx * dx <= best.d2) strip.push_back(ids[i]);
  }
  for (std::size_t i = 0; i < strip.size(); ++i) {
    for (std::size_t j = i + 1; j < strip.size(); ++j) {
      const double dy = pts[strip[j]].y - pts[strip[i]].y;
      if (dy * dy > best.d2) break;
      best.offer(dist2(pts[strip[i]], pts[strip[j]]), strip[i], strip[j]);
    }
  }
}

}  // namespace

ClosestPairResult closest_pair(std::span<const Vec2> points) {
  assert(points.size() >= 2);
  std::vector<NodeId> ids(points.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  std::sort(ids.begin(), ids.end(), [&](NodeId x, NodeId y) {
    return points[x].x < points[y].x || (points[x].x == points[y].x && x < y);
  });
  std::vector<NodeId> aux(points.size());
  Candidate best;
  solve(points, ids, aux, 0, points.size(), best);
  return {best.a, best.b, std::sqrt(best.d2)};
}

ClosestPairResult closest_pair_brute(std::span<const Vec2> points) {
  assert(points.size() >= 2);
  Candidate best;
  for (NodeId i = 0; i < points.size(); ++i) {
    for (NodeId j = i + 1; j < points.size(); ++j) {
      best.offer(dist2(points[i], points[j]), i, j);
    }
  }
  return {best.a, best.b, std::sqrt(best.d2)};
}

}  // namespace rim::geom
