#include "rim/parallel/thread_pool.hpp"

#include <algorithm>

namespace rim::parallel {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rim::parallel
