#include "rim/parallel/thread_pool.hpp"

#include <algorithm>

namespace rim::parallel {

using common::MutexLock;

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit re-check loop (not a wait-predicate lambda): the thread-safety
  // analysis treats a lambda as a separate unlocked function, but sees the
  // capability held across this wait (mutex.hpp).
  while (in_flight_ != 0) idle_.wait(lock.native());
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rim::parallel
