#pragma once

#include <algorithm>
#include <cstddef>

#include "rim/parallel/thread_pool.hpp"

/// \file parallel_for.hpp
/// Blocked parallel loop over an index range, in the OpenMP
/// `parallel for schedule(static)` spirit but with explicit pool ownership.
///
/// Thread-safety contract (DESIGN.md §8): these helpers hold no locks of
/// their own — all synchronisation lives behind ThreadPool::submit /
/// wait_idle, whose RIM_EXCLUDES(mutex_) annotations propagate the
/// no-reentrancy rule: never call parallel_for from inside a task running
/// on the same pool (wait_idle would deadlock on its own worker).

namespace rim::parallel {

/// Invoke body(i) for every i in [begin, end), split into contiguous blocks
/// of at least \p grain indices executed on \p pool. Blocks until all
/// iterations complete. body must be safe to call concurrently on disjoint
/// indices. Falls back to a serial loop for small ranges.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  ThreadPool& pool = ThreadPool::shared(),
                  std::size_t grain = 256) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t workers = pool.thread_count();
  if (count <= grain || workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t blocks = std::min(workers * 4, (count + grain - 1) / grain);
  const std::size_t block_size = (count + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * block_size;
    const std::size_t hi = std::min(end, lo + block_size);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

/// Parallel map-reduce: reduce(body(i)) over [begin, end) with a
/// deterministic block-ordered combine (the per-block partials are combined
/// in block order, so floating-point reductions are reproducible run to run).
template <typename T, typename Body, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T init,
                                const Body& body, const Combine& combine,
                                ThreadPool& pool = ThreadPool::shared(),
                                std::size_t grain = 256) {
  if (begin >= end) return init;
  const std::size_t count = end - begin;
  const std::size_t workers = pool.thread_count();
  if (count <= grain || workers <= 1) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  const std::size_t blocks = std::min(workers * 4, (count + grain - 1) / grain);
  const std::size_t block_size = (count + blocks - 1) / blocks;
  std::vector<T> partial(blocks, init);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * block_size;
    const std::size_t hi = std::min(end, lo + block_size);
    if (lo >= hi) break;
    pool.submit([lo, hi, b, &partial, &body, &combine, init] {
      T acc = init;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
      partial[b] = acc;
    });
  }
  pool.wait_idle();
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace rim::parallel
