#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A small fixed-size worker pool.
///
/// Per the HPC guides: parallelism is explicit — callers decide what runs in
/// parallel; the pool only executes. RAII owns the workers: destruction
/// drains the queue and joins every thread, so no thread ever outlives the
/// pool object.

namespace rim::parallel {

class ThreadPool {
 public:
  /// Start \p thread_count workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t thread_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all pending work, then joins.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw (the pool std::terminates on
  /// escaping exceptions, matching the no-exceptions-in-kernels policy).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed, sized to the hardware).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace rim::parallel
