#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "rim/common/mutex.hpp"
#include "rim/common/thread_annotations.hpp"

/// \file thread_pool.hpp
/// A small fixed-size worker pool.
///
/// Per the HPC guides: parallelism is explicit — callers decide what runs in
/// parallel; the pool only executes. RAII owns the workers: destruction
/// drains the queue and joins every thread, so no thread ever outlives the
/// pool object.
///
/// All mutable pool state is guarded by `mutex_` and statically checked by
/// clang's thread-safety analysis (DESIGN.md §8): `queue_`, `in_flight_` and
/// `stopping_` carry RIM_GUARDED_BY, and the public entry points are
/// RIM_EXCLUDES(mutex_) — submitting from inside a task that somehow holds
/// the pool lock is a compile error under `-Werror=thread-safety-analysis`.

namespace rim::parallel {

class ThreadPool {
 public:
  /// Start \p thread_count workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t thread_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all pending work, then joins.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw (the pool std::terminates on
  /// escaping exceptions, matching the no-exceptions-in-kernels policy).
  void submit(std::function<void()> task) RIM_EXCLUDES(mutex_);

  /// Block until every submitted task has finished.
  void wait_idle() RIM_EXCLUDES(mutex_);

  /// Process-wide shared pool (lazily constructed, sized to the hardware).
  static ThreadPool& shared();

 private:
  void worker_loop() RIM_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  common::Mutex mutex_;
  std::queue<std::function<void()>> queue_ RIM_GUARDED_BY(mutex_);
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ RIM_GUARDED_BY(mutex_) = 0;
  bool stopping_ RIM_GUARDED_BY(mutex_) = false;
};

}  // namespace rim::parallel
