#include "rim/topology/gabriel.hpp"

#include "rim/geom/disk.hpp"
#include "rim/geom/grid_index.hpp"

namespace rim::topology {

graph::Graph gabriel_graph(std::span<const geom::Vec2> points,
                           const graph::Graph& udg) {
  graph::Graph out(points.size());
  if (points.empty()) return out;
  // Witnesses for edge {u,v} lie within |uv|/2 of the midpoint; query the
  // grid rather than scanning all nodes.
  const geom::GridIndex index(points, 0.25);
  for (graph::Edge e : udg.edges()) {
    const geom::Vec2 mid = geom::midpoint(points[e.u], points[e.v]);
    const double r2 = geom::dist2(points[e.u], points[e.v]) * 0.25;
    bool blocked = false;
    index.for_each_in_disk(mid, std::sqrt(r2), [&](NodeId w) {
      if (w == e.u || w == e.v || blocked) return;
      // Strictly inside the diametral disk blocks the edge; boundary nodes
      // (e.g. right angles) do not, keeping the graph a Gabriel supergraph
      // of the MST even under degenerate co-circular inputs.
      if (geom::dist2(points[w], mid) < r2) blocked = true;
    });
    if (!blocked) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace rim::topology
