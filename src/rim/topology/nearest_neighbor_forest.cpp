#include "rim/topology/nearest_neighbor_forest.hpp"

#include <limits>

namespace rim::topology {

graph::Graph nearest_neighbor_forest(std::span<const geom::Vec2> points,
                                     const graph::Graph& udg) {
  graph::Graph out(points.size());
  for (NodeId u = 0; u < points.size(); ++u) {
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (NodeId v : udg.neighbors(u)) {
      const double d2 = geom::dist2(points[u], points[v]);
      if (d2 < best_d2 || (d2 == best_d2 && v < best)) {
        best_d2 = d2;
        best = v;
      }
    }
    if (best != kInvalidNode) out.add_edge(u, best);
  }
  return out;
}

}  // namespace rim::topology
