#include "rim/topology/nearest_neighbor_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rim/geom/dynamic_grid.hpp"

namespace rim::topology {

graph::Graph nearest_neighbor_forest(std::span<const geom::Vec2> points,
                                     const graph::Graph& udg) {
  graph::Graph out(points.size());
  for (NodeId u = 0; u < points.size(); ++u) {
    NodeId best = kInvalidNode;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (NodeId v : udg.neighbors(u)) {
      const double d2 = geom::dist2(points[u], points[v]);
      if (d2 < best_d2 || (d2 == best_d2 && v < best)) {
        best_d2 = d2;
        best = v;
      }
    }
    if (best != kInvalidNode) out.add_edge(u, best);
  }
  return out;
}

graph::Graph nearest_neighbor_forest(std::span<const geom::Vec2> points) {
  graph::Graph out(points.size());
  if (points.size() < 2) return out;

  // Cell size targeting ~1 point per cell: expanding-ring nearest() then
  // terminates after O(1) rings for anything near-uniform.
  double lo_x = points[0].x, hi_x = points[0].x;
  double lo_y = points[0].y, hi_y = points[0].y;
  for (const geom::Vec2 p : points) {
    lo_x = std::min(lo_x, p.x);
    hi_x = std::max(hi_x, p.x);
    lo_y = std::min(lo_y, p.y);
    hi_y = std::max(hi_y, p.y);
  }
  const double extent = std::max(hi_x - lo_x, hi_y - lo_y);
  const double cell = std::max(
      extent / std::sqrt(static_cast<double>(points.size())), 1e-12);

  geom::DynamicGrid grid(cell);
  grid.reserve(points.size());
  for (NodeId u = 0; u < points.size(); ++u) grid.insert(u, points[u], 0.0);
  for (NodeId u = 0; u < points.size(); ++u) {
    const NodeId best = grid.nearest(points[u], u);
    if (best != kInvalidNode) out.add_edge(u, best);
  }
  return out;
}

}  // namespace rim::topology
