#include "rim/topology/cbtc.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace rim::topology {

namespace {

/// Largest angular gap (radians) between consecutive directions in the
/// sorted list; 2π for an empty list, 2π for a single direction.
double max_angular_gap(std::vector<double>& angles) {
  if (angles.empty()) return 2.0 * std::numbers::pi;
  std::sort(angles.begin(), angles.end());
  double gap = angles.front() + 2.0 * std::numbers::pi - angles.back();
  for (std::size_t i = 1; i < angles.size(); ++i) {
    gap = std::max(gap, angles[i] - angles[i - 1]);
  }
  return gap;
}

}  // namespace

graph::Graph cbtc(std::span<const geom::Vec2> points, const graph::Graph& udg,
                  double alpha) {
  graph::Graph out(points.size());
  std::vector<NodeId> order;
  std::vector<double> angles;
  for (NodeId u = 0; u < points.size(); ++u) {
    const auto neighbors = udg.neighbors(u);
    order.assign(neighbors.begin(), neighbors.end());
    // Grow the neighbor set nearest-first — the discrete analogue of
    // increasing transmission power.
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const double da = geom::dist2(points[u], points[a]);
      const double db = geom::dist2(points[u], points[b]);
      return da < db || (da == db && a < b);
    });
    angles.clear();
    for (NodeId v : order) {
      const geom::Vec2 d = points[v] - points[u];
      out.add_edge(u, v);  // union symmetrization: either side suffices
      angles.push_back(std::atan2(d.y, d.x));
      std::vector<double> scratch = angles;
      if (max_angular_gap(scratch) <= alpha) break;  // every cone is covered
    }
  }
  return out;
}

}  // namespace rim::topology
