#include "rim/topology/mst_topology.hpp"

#include "rim/graph/mst.hpp"

namespace rim::topology {

graph::Graph mst_topology(std::span<const geom::Vec2> points,
                          const graph::Graph& udg) {
  // Deterministic tie-breaking lives inside kruskal (edge order fallback).
  return graph::euclidean_mst(udg, points);
}

}  // namespace rim::topology
