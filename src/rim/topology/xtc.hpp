#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file xtc.hpp
/// XTC (Wattenhofer & Zollinger, WMAN 2004): each node ranks its UDG
/// neighbors by link quality — here Euclidean distance with node-id
/// tie-break — and drops the link to v when some w is ranked better than v
/// by u *and* better than u by v. With Euclidean distances the result is a
/// connected (per UDG component) subgraph of the RNG with degree <= 6.

namespace rim::topology {

[[nodiscard]] graph::Graph xtc(std::span<const geom::Vec2> points,
                               const graph::Graph& udg);

}  // namespace rim::topology
