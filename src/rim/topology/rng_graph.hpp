#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file rng_graph.hpp
/// Relative Neighborhood Graph restricted to the UDG: edge {u,v} survives
/// iff no third node w is strictly closer to both endpoints than they are to
/// each other (the "lune" is empty). Subgraph of the Gabriel graph,
/// supergraph of the Euclidean MST — hence connectivity-preserving.

namespace rim::topology {

[[nodiscard]] graph::Graph relative_neighborhood_graph(
    std::span<const geom::Vec2> points, const graph::Graph& udg);

}  // namespace rim::topology
