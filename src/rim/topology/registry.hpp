#pragma once

#include <span>
#include <vector>

#include "rim/topology/topology_algorithm.hpp"

/// \file registry.hpp
/// Catalogue of every topology-control algorithm in the library, for
/// surveys (experiment E9) and the example applications.

namespace rim::topology {

/// All algorithms, in presentation order. The list is constructed once;
/// the reference stays valid for the process lifetime.
[[nodiscard]] std::span<const NamedAlgorithm> all_algorithms();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const NamedAlgorithm* find_algorithm(std::string_view name);

}  // namespace rim::topology
