#include "rim/topology/yao.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

namespace rim::topology {

namespace {

/// Cone index of direction d (non-zero) among k cones anchored at angle 0.
std::size_t cone_of(geom::Vec2 d, std::size_t k) {
  double angle = std::atan2(d.y, d.x);  // (-pi, pi]
  if (angle < 0.0) angle += 2.0 * std::numbers::pi;
  auto cone = static_cast<std::size_t>(angle / (2.0 * std::numbers::pi) *
                                       static_cast<double>(k));
  return cone >= k ? k - 1 : cone;  // guard the angle == 2*pi rounding edge
}

}  // namespace

graph::Graph yao_graph(std::span<const geom::Vec2> points, const graph::Graph& udg,
                       std::size_t k, Symmetrization sym) {
  assert(k >= 1);
  const std::size_t n = points.size();
  // selected[u] holds u's chosen partner per cone.
  std::vector<std::vector<NodeId>> selected(n, std::vector<NodeId>(k, kInvalidNode));
  std::vector<std::vector<double>> best_d2(
      n, std::vector<double>(k, std::numeric_limits<double>::infinity()));

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : udg.neighbors(u)) {
      const geom::Vec2 d = points[v] - points[u];
      // RIM_LINT_ALLOW(float-equality): exact zero-vector test for
      // coincident points, matching routing/geographic.cpp.
      if (d.x == 0.0 && d.y == 0.0) continue;  // coincident points: skip
      const std::size_t c = cone_of(d, k);
      const double d2 = geom::norm2(d);
      if (d2 < best_d2[u][c] || (d2 == best_d2[u][c] && v < selected[u][c])) {
        best_d2[u][c] = d2;
        selected[u][c] = v;
      }
    }
  }

  graph::Graph out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t c = 0; c < k; ++c) {
      const NodeId v = selected[u][c];
      if (v == kInvalidNode) continue;
      if (sym == Symmetrization::kUnion) {
        out.add_edge(u, v);
      } else {
        // Intersection: v must have selected u in some cone of its own.
        bool mutual = false;
        for (std::size_t c2 = 0; c2 < k && !mutual; ++c2) {
          mutual = selected[v][c2] == u;
        }
        if (mutual) out.add_edge(u, v);
      }
    }
  }
  return out;
}

}  // namespace rim::topology
