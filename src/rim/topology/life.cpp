#include "rim/topology/life.hpp"

#include "rim/core/sender_centric.hpp"
#include "rim/graph/mst.hpp"

namespace rim::topology {

graph::Graph life(std::span<const geom::Vec2> points, const graph::Graph& udg) {
  // kruskal() breaks coverage ties by canonical edge order, so the
  // construction is deterministic.
  return graph::kruskal(udg, [points](graph::Edge e) {
    return static_cast<double>(core::edge_coverage(points, e));
  });
}

}  // namespace rim::topology
