#include "rim/topology/lmst.hpp"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

namespace rim::topology {

namespace {

using Weight = std::tuple<double, NodeId, NodeId>;

Weight edge_weight(std::span<const geom::Vec2> points, NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return {geom::dist2(points[a], points[b]), a, b};
}

constexpr Weight kInfiniteWeight{std::numeric_limits<double>::infinity(),
                                 kInvalidNode, kInvalidNode};

}  // namespace

graph::Graph lmst(std::span<const geom::Vec2> points, const graph::Graph& udg) {
  const std::size_t n = points.size();
  // selects[u] = sorted partners u keeps from its local MST.
  std::vector<std::vector<NodeId>> selects(n);

  std::vector<NodeId> local;          // u's closed neighborhood
  std::vector<bool> in_tree;          // Prim state, indexed into `local`
  std::vector<Weight> best;           // best connection weight per local node
  std::vector<std::size_t> best_from; // local index the best edge comes from

  for (NodeId u = 0; u < n; ++u) {
    local.assign(1, u);
    for (NodeId v : udg.neighbors(u)) local.push_back(v);
    const std::size_t m = local.size();
    if (m == 1) continue;

    // Prim over the *visible* graph: nodes of `local`, edges of the UDG
    // restricted to them (two neighbors of u are adjacent locally only when
    // they are UDG neighbors of each other).
    in_tree.assign(m, false);
    best.assign(m, kInfiniteWeight);
    best_from.assign(m, 0);
    in_tree[0] = true;  // start at u itself
    for (std::size_t j = 1; j < m; ++j) {
      best[j] = edge_weight(points, u, local[j]);
      best_from[j] = 0;
    }
    for (std::size_t step = 1; step < m; ++step) {
      std::size_t pick = m;
      for (std::size_t j = 0; j < m; ++j) {
        if (!in_tree[j] && (pick == m || best[j] < best[pick])) pick = j;
      }
      if (pick == m || best[pick] == kInfiniteWeight) break;  // local graph split
      in_tree[pick] = true;
      // Record edges incident to u only.
      if (best_from[pick] == 0) {
        selects[u].push_back(local[pick]);
      } else if (local[pick] == u) {
        selects[u].push_back(local[best_from[pick]]);
      }
      for (std::size_t j = 0; j < m; ++j) {
        if (in_tree[j]) continue;
        if (!udg.has_edge(local[pick], local[j])) continue;
        const Weight w = edge_weight(points, local[pick], local[j]);
        if (w < best[j]) {
          best[j] = w;
          best_from[j] = pick;
        }
      }
    }
    std::sort(selects[u].begin(), selects[u].end());
  }

  graph::Graph out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : selects[u]) {
      if (v < u) continue;  // handle each pair once, from the smaller side
      if (std::binary_search(selects[v].begin(), selects[v].end(), u)) {
        out.add_edge(u, v);
      }
    }
  }
  return out;
}

}  // namespace rim::topology
