#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file life.hpp
/// LIFE — Low Interference Forest Establisher (Burkhart et al., MobiHoc
/// 2004): Kruskal over the UDG edges ordered by *sender-centric edge
/// coverage* instead of length. The result is a spanning forest minimizing
/// the maximum edge coverage among all connectivity-preserving topologies
/// (optimal in the MobiHoc'04 model). The paper cites this as the notable
/// exception that does not necessarily contain the NNF — and then shows it
/// still performs badly under the receiver-centric measure (Section 4),
/// which experiment E9 demonstrates numerically.

namespace rim::topology {

[[nodiscard]] graph::Graph life(std::span<const geom::Vec2> points,
                                const graph::Graph& udg);

}  // namespace rim::topology
