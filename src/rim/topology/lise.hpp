#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file lise.hpp
/// LISE — Low Interference Spanner Establisher (Burkhart et al., MobiHoc
/// 2004): process UDG edges in increasing sender-centric coverage order and
/// add an edge only when the topology built so far does not yet contain a
/// path of length <= t * |uv| between its endpoints. The output is a
/// t-spanner of the UDG whose maximum edge coverage is minimal among
/// t-spanners in their model.

namespace rim::topology {

/// \p t >= 1 is the Euclidean stretch bound.
[[nodiscard]] graph::Graph lise(std::span<const geom::Vec2> points,
                                const graph::Graph& udg, double t = 2.0);

}  // namespace rim::topology
