#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file cbtc.hpp
/// CBTC — Cone-Based Topology Control (Wattenhofer, Li, Bahl, Wang,
/// INFOCOM 2001), the algorithm the paper credits with initiating the
/// second wave of topology control.
///
/// Each node grows its transmission power (here: its neighbor set, nearest
/// first) until every cone of opening angle alpha around it contains a
/// reached neighbor, or its maximum power (the UDG neighborhood) is
/// exhausted. For alpha <= 2π/3 the union-symmetrized result preserves
/// connectivity of the UDG.

namespace rim::topology {

/// Basic CBTC with cone angle \p alpha (radians, default 2π/3).
[[nodiscard]] graph::Graph cbtc(std::span<const geom::Vec2> points,
                                const graph::Graph& udg,
                                double alpha = 2.0943951023931953 /* 2π/3 */);

}  // namespace rim::topology
