#include "rim/topology/rng_graph.hpp"

#include <cmath>

#include "rim/geom/grid_index.hpp"

namespace rim::topology {

graph::Graph relative_neighborhood_graph(std::span<const geom::Vec2> points,
                                         const graph::Graph& udg) {
  graph::Graph out(points.size());
  if (points.empty()) return out;
  const geom::GridIndex index(points, 0.25);
  for (graph::Edge e : udg.edges()) {
    const geom::Vec2 pu = points[e.u];
    const geom::Vec2 pv = points[e.v];
    const double d2 = geom::dist2(pu, pv);
    const double d = std::sqrt(d2);
    bool blocked = false;
    // The lune is contained in the disk of radius d around the midpoint.
    index.for_each_in_disk(geom::midpoint(pu, pv), d, [&](NodeId w) {
      if (w == e.u || w == e.v || blocked) return;
      if (geom::dist2(points[w], pu) < d2 && geom::dist2(points[w], pv) < d2) {
        blocked = true;
      }
    });
    if (!blocked) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace rim::topology
