#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file mst_topology.hpp
/// GMST topology control: the Euclidean minimum spanning forest of the UDG.
/// The classic minimum-power connectivity-preserving construction (Li, Hou,
/// Sha INFOCOM'03 build a localized variant, LMST; this is the global one).
/// Note the Euclidean MST contains the NNF, so Theorem 4.1 applies to it.

namespace rim::topology {

[[nodiscard]] graph::Graph mst_topology(std::span<const geom::Vec2> points,
                                        const graph::Graph& udg);

}  // namespace rim::topology
