#include "rim/topology/registry.hpp"

#include "rim/ext2d/grid_hub.hpp"
#include "rim/geom/delaunay.hpp"
#include "rim/topology/cbtc.hpp"
#include "rim/topology/gabriel.hpp"
#include "rim/topology/knn.hpp"
#include "rim/topology/life.hpp"
#include "rim/topology/lise.hpp"
#include "rim/topology/lmst.hpp"
#include "rim/topology/mst_topology.hpp"
#include "rim/topology/nearest_neighbor_forest.hpp"
#include "rim/topology/rng_graph.hpp"
#include "rim/topology/xtc.hpp"
#include "rim/topology/yao.hpp"

namespace rim::topology {

namespace {

std::vector<NamedAlgorithm> make_registry() {
  using geom::Vec2;
  using graph::Graph;
  std::vector<NamedAlgorithm> algorithms;
  algorithms.push_back({"nnf",
                        [](std::span<const Vec2> p, const Graph& g) {
                          return nearest_neighbor_forest(p, g);
                        },
                        /*preserves_connectivity=*/false, /*contains_nnf=*/true});
  algorithms.push_back({"mst", mst_topology, true, true});
  algorithms.push_back({"gabriel", gabriel_graph, true, true});
  algorithms.push_back({"rng", relative_neighborhood_graph, true, true});
  algorithms.push_back({"yao6",
                        [](std::span<const Vec2> p, const Graph& g) {
                          return yao_graph(p, g, 6, Symmetrization::kUnion);
                        },
                        true, true});
  algorithms.push_back({"xtc", xtc, true, true});
  algorithms.push_back({"lmst", lmst, true, true});
  algorithms.push_back({"life", life,
                        /*preserves_connectivity=*/true,
                        /*contains_nnf=*/false});
  algorithms.push_back({"lise2",
                        [](std::span<const Vec2> p, const Graph& g) {
                          return lise(p, g, 2.0);
                        },
                        true, /*contains_nnf=*/false});
  algorithms.push_back({"knn3",
                        [](std::span<const Vec2> p, const Graph& g) {
                          return knn_topology(p, g, 3);
                        },
                        /*preserves_connectivity=*/false, true});
  algorithms.push_back({"cbtc", [](std::span<const Vec2> p, const Graph& g) {
                          return cbtc(p, g);
                        },
                        true, true});
  // Unit Delaunay contains Gabriel(UDG) and every nearest-neighbor link.
  algorithms.push_back({"udel",
                        [](std::span<const Vec2> p, const Graph& g) {
                          (void)g;
                          return geom::unit_delaunay(p, 1.0);
                        },
                        true, true});
  // The 2-D lift of A_gen (paper Section 6 future work; experiment E13).
  algorithms.push_back({"hub2d",
                        [](std::span<const Vec2> p, const Graph& g) {
                          return ext2d::grid_hub_2d(p, g).topology;
                        },
                        true, /*contains_nnf=*/false});
  return algorithms;
}

}  // namespace

std::span<const NamedAlgorithm> all_algorithms() {
  static const std::vector<NamedAlgorithm> registry = make_registry();
  return registry;
}

const NamedAlgorithm* find_algorithm(std::string_view name) {
  for (const NamedAlgorithm& a : all_algorithms()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace rim::topology
