#pragma once

#include <cstddef>
#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file yao.hpp
/// Yao graph on the UDG: each node partitions the plane into k equal cones
/// (anchored at angle 0) and keeps a link to its nearest UDG neighbor in
/// each cone. The native construction is directed; we expose both
/// symmetrisations used in the literature.

namespace rim::topology {

enum class Symmetrization {
  kUnion,         ///< undirected edge when either endpoint selected it (Yao)
  kIntersection,  ///< only when both selected it (Yao ∩, sparser, may disconnect)
};

/// Yao graph with k >= 1 cones. For k >= 6 and kUnion the result preserves
/// UDG connectivity (each cone's nearest neighbor is closer than the cone's
/// far side). Ties break toward the smaller node id.
[[nodiscard]] graph::Graph yao_graph(std::span<const geom::Vec2> points,
                                     const graph::Graph& udg, std::size_t k = 6,
                                     Symmetrization sym = Symmetrization::kUnion);

}  // namespace rim::topology
