#include "rim/topology/xtc.hpp"

#include <utility>

namespace rim::topology {

namespace {

/// XTC link-quality order seen from x: smaller is better. Total order via
/// the id tie-break, as the protocol requires.
std::pair<double, NodeId> rank(std::span<const geom::Vec2> points, NodeId x,
                               NodeId other) {
  return {geom::dist2(points[x], points[other]), other};
}

}  // namespace

graph::Graph xtc(std::span<const geom::Vec2> points, const graph::Graph& udg) {
  graph::Graph out(points.size());
  for (graph::Edge e : udg.edges()) {
    // Drop {u,v} iff some common neighbor w beats v from u's view and beats
    // u from v's view. The condition is symmetric, so one check suffices.
    bool dropped = false;
    for (NodeId w : udg.neighbors(e.u)) {
      if (w == e.v) continue;
      if (!udg.has_edge(w, e.v)) continue;  // w must be heard by both
      if (rank(points, e.u, w) < rank(points, e.u, e.v) &&
          rank(points, e.v, w) < rank(points, e.v, e.u)) {
        dropped = true;
        break;
      }
    }
    if (!dropped) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace rim::topology
