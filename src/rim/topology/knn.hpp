#pragma once

#include <cstddef>
#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file knn.hpp
/// k-nearest-neighbors topology: every node links to its k nearest UDG
/// neighbors; an undirected edge appears when either endpoint selected it.
/// A common strawman: it contains the NNF (k >= 1) and does not guarantee
/// connectivity preservation.

namespace rim::topology {

[[nodiscard]] graph::Graph knn_topology(std::span<const geom::Vec2> points,
                                        const graph::Graph& udg, std::size_t k = 3);

}  // namespace rim::topology
