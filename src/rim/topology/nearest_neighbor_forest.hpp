#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file nearest_neighbor_forest.hpp
/// The Nearest Neighbor Forest: every node establishes a symmetric link to
/// its nearest UDG neighbor.
///
/// Section 4 of the paper observes that (almost) all known symmetric-link
/// topology-control algorithms contain this structure as a subgraph — and
/// Theorem 4.1 shows that this alone already costs a factor Ω(n) in
/// receiver-centric interference on the two-exponential-chains instance.

namespace rim::topology {

/// Build the NNF over \p points restricted to edges of \p udg. Distance ties
/// break toward the smaller node id. Nodes with no UDG neighbor stay
/// isolated. The result is a forest or pseudo-forest union of NN links
/// (mutual nearest pairs contribute one edge).
[[nodiscard]] graph::Graph nearest_neighbor_forest(
    std::span<const geom::Vec2> points, const graph::Graph& udg);

/// Unrestricted NNF: every node links to its globally nearest other node
/// (ties toward the smaller id, matching the UDG form and
/// geom::DynamicGrid::nearest). Found per node by expanding-ring grid
/// search instead of scanning a neighbor list, so million-node deployments
/// (E23) skip the O(n^2)-edge UDG build entirely.
[[nodiscard]] graph::Graph nearest_neighbor_forest(
    std::span<const geom::Vec2> points);

}  // namespace rim::topology
