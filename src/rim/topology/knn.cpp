#include "rim/topology/knn.hpp"

#include <algorithm>
#include <vector>

namespace rim::topology {

graph::Graph knn_topology(std::span<const geom::Vec2> points,
                          const graph::Graph& udg, std::size_t k) {
  graph::Graph out(points.size());
  std::vector<NodeId> order;
  for (NodeId u = 0; u < points.size(); ++u) {
    const auto neighbors = udg.neighbors(u);
    order.assign(neighbors.begin(), neighbors.end());
    const std::size_t keep = std::min(k, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep), order.end(),
                      [&](NodeId a, NodeId b) {
                        const double da = geom::dist2(points[u], points[a]);
                        const double db = geom::dist2(points[u], points[b]);
                        return da < db || (da == db && a < b);
                      });
    for (std::size_t i = 0; i < keep; ++i) out.add_edge(u, order[i]);
  }
  return out;
}

}  // namespace rim::topology
