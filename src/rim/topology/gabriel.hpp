#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file gabriel.hpp
/// Gabriel graph restricted to the UDG: edge {u,v} survives iff no third
/// node lies strictly inside the disk with diameter uv. A planar,
/// connectivity-preserving structure used by geographic routing (GPSR) and
/// first-generation topology control.

namespace rim::topology {

[[nodiscard]] graph::Graph gabriel_graph(std::span<const geom::Vec2> points,
                                         const graph::Graph& udg);

}  // namespace rim::topology
