#pragma once

#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file lmst.hpp
/// LMST (Li, Hou, Sha, INFOCOM 2003): each node u builds the minimum
/// spanning tree of its closed 1-hop neighborhood and keeps the tree edges
/// incident to itself; the final topology keeps an edge only when both
/// endpoints selected it (the symmetric "LMST-" variant), which preserves
/// connectivity and bounds degree by 6.
///
/// Edge weights use (distance, smaller id, larger id) lexicographically so
/// the local MSTs are unique and mutually consistent.

namespace rim::topology {

[[nodiscard]] graph::Graph lmst(std::span<const geom::Vec2> points,
                                const graph::Graph& udg);

}  // namespace rim::topology
