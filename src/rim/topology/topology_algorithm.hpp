#pragma once

#include <functional>
#include <span>
#include <string>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file topology_algorithm.hpp
/// Common shape of every topology-control algorithm in the library.
///
/// An algorithm maps the input communication graph — a UDG over positioned
/// nodes — to a spanning subgraph with only symmetric links (the paper's
/// Section 3 restriction). All algorithms here are deterministic functions
/// of (points, udg).

namespace rim::topology {

/// Builder signature shared by the whole zoo.
using Builder = std::function<graph::Graph(std::span<const geom::Vec2>,
                                           const graph::Graph&)>;

/// A named algorithm, as listed by the registry (registry.hpp).
struct NamedAlgorithm {
  std::string name;
  Builder build;
  /// Whether the construction is guaranteed to preserve the connectivity of
  /// the input graph (NNF and kNN are not).
  bool preserves_connectivity = true;
  /// Whether the output contains the Nearest Neighbor Forest as a subgraph —
  /// the structural property Theorem 4.1 exploits.
  bool contains_nnf = true;
};

}  // namespace rim::topology
