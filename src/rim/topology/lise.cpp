#include "rim/topology/lise.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <vector>

#include "rim/core/sender_centric.hpp"

namespace rim::topology {

namespace {

/// Dijkstra from s, pruned at distance > limit; returns dist(s, target)
/// or +inf. Cheaper than a full shortest-path run because the frontier
/// stops expanding past the budget.
double bounded_distance(const graph::Graph& g, std::span<const geom::Vec2> points,
                        NodeId s, NodeId target, double limit) {
  std::vector<double> dist(g.node_count(), std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[s] = 0.0;
  heap.emplace(0.0, s);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == target) return d;
    for (NodeId v : g.neighbors(u)) {
      const double nd = d + geom::dist(points[u], points[v]);
      if (nd <= limit && nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  return dist[target];
}

}  // namespace

graph::Graph lise(std::span<const geom::Vec2> points, const graph::Graph& udg,
                  double t) {
  assert(t >= 1.0);
  const std::span<const graph::Edge> edges = udg.edges();
  std::vector<std::uint32_t> coverage;
  coverage.reserve(edges.size());
  for (graph::Edge e : edges) coverage.push_back(core::edge_coverage(points, e));

  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (coverage[a] != coverage[b]) return coverage[a] < coverage[b];
    return edges[a] < edges[b];
  });

  graph::Graph out(points.size());
  for (std::size_t i : order) {
    const graph::Edge e = edges[i];
    const double budget = t * geom::dist(points[e.u], points[e.v]);
    if (bounded_distance(out, points, e.u, e.v, budget) > budget) {
      out.add_edge(e.u, e.v);
    }
  }
  return out;
}

}  // namespace rim::topology
