#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#define RIM_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define RIM_SIMD_NEON 1
#endif

/// \file simd.hpp
/// Portable explicit-SIMD kernels for the disk-coverage hot loops.
///
/// The receiver-centric model is built entirely from one predicate — the
/// exact closed-disk containment test `d2 <= r2` with
/// `d2 = dx*dx + dy*dy` evaluated in double precision — over
/// structure-of-arrays columns (geom::DynamicGrid cells, core::NodeSoA).
/// That predicate vectorises losslessly: each lane computes the identical
/// two multiplies and one add in round-to-nearest double, the comparison
/// is exact, and the counts are integers, so the SIMD kernels are
/// bit-identical to the scalar loops (tests/simd_test.cpp pins this on
/// denormals and exact-boundary radii; the E18/E21 benches pin it on
/// 100k-node instances).
///
/// Fused multiply-add is the one instruction that could break identity
/// (one rounding instead of two), so the kernels only ever use explicit
/// non-fused multiply and add intrinsics, and the scalar fallbacks disable
/// floating-point contraction. x86-64's SSE2 baseline has no FMA at all;
/// on AArch64 the explicit vmulq/vaddq intrinsics are never contracted.
///
/// Two width-2 backends (SSE2 __m128d, NEON float64x2) plus an
/// auto-vectorisation-friendly scalar fallback. Every kernel has a
/// `_scalar` twin compiled unconditionally — the identity tests compare
/// the active backend against it directly.

namespace rim::simd {

#if defined(RIM_SIMD_SSE2)
inline constexpr bool kHaveSimd = true;
inline constexpr std::string_view kBackend = "sse2";
#elif defined(RIM_SIMD_NEON)
inline constexpr bool kHaveSimd = true;
inline constexpr std::string_view kBackend = "neon";
#else
inline constexpr bool kHaveSimd = false;
inline constexpr std::string_view kBackend = "scalar";
#endif

/// Counts from one coverage pass over a SoA column block (see
/// count_coverage).
struct CoverageCounts {
  std::uint64_t visited = 0;  ///< lanes with d2 <= query_r2
  std::uint64_t covered = 0;  ///< lanes with d2 <= query_r2, w > 0, d2 <= w
};

/// One receiver's accumulated SINR interference terms (see sinr_gather).
struct SinrAccum {
  double power = 0.0;             ///< sum of eligible path-loss contributions
  std::uint64_t significant = 0;  ///< eligible lanes with contribution >= sig
};

namespace detail {

#if defined(__clang__)
#define RIM_SIMD_NO_CONTRACT _Pragma("clang fp contract(off)")
#else
#define RIM_SIMD_NO_CONTRACT
#endif

/// d2 = dx*dx + dy*dy with two roundings — the exact arithmetic shape of
/// geom::dist2 and of both vector backends (never fused).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline double
squared_distance(double x, double y, double cx, double cy) {
  RIM_SIMD_NO_CONTRACT
  const double dx = x - cx;
  const double dy = y - cy;
  return dx * dx + dy * dy;
}

/// x^h for small integer h >= 1 by left-associated repeated multiplication
/// (x, x*x, (x*x)*x, ...). The fixed association order is part of the SINR
/// kernel contract: every backend — vector or scalar — performs the same
/// h-1 roundings in the same order, so results are bit-identical.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline double
ipow(double x, int h) {
  RIM_SIMD_NO_CONTRACT
  double r = x;
  for (int k = 1; k < h; ++k) r *= x;
  return r;
}

/// num / den where den == 0.0 is reachable BY DESIGN: ipow underflows a
/// denormal d2^h to 0.0 and the kernels pin the resulting IEEE-754 inf
/// (the vector backends divide the same operands and produce the same
/// bits — tests/simd_test.cpp's denormal cases assert it). Kept out of
/// float-divide-by-zero sanitization so the UBSan CI leg can enforce that
/// check strictly everywhere else.
#if defined(__clang__) || defined(__GNUC__)
__attribute__((no_sanitize("float-divide-by-zero")))
#endif
inline double
div_allow_zero(double num, double den) { return num / den; }

}  // namespace detail

/// Scalar reference: for each i in [0, n), with d2 computed as above,
/// visited counts d2 <= query_r2 and covered counts
/// d2 <= query_r2 && ws[i] > 0 && d2 <= ws[i]. All comparisons exact;
/// NaN coordinates compare false everywhere, matching the `<=` loops.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline CoverageCounts
count_coverage_scalar(const double* xs, const double* ys, const double* ws,
                      std::size_t n, double cx, double cy, double query_r2) {
  RIM_SIMD_NO_CONTRACT
  CoverageCounts out;
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = detail::squared_distance(xs[i], ys[i], cx, cy);
    if (d2 <= query_r2) {
      ++out.visited;
      if (ws[i] > 0.0 && d2 <= ws[i]) ++out.covered;
    }
  }
  return out;
}

/// Scalar reference for squared_distances: out[i] = d2(i).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline void
squared_distances_scalar(const double* xs, const double* ys, std::size_t n,
                         double cx, double cy, double* out) {
  RIM_SIMD_NO_CONTRACT
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::squared_distance(xs[i], ys[i], cx, cy);
  }
}

/// Scalar reference for the SINR *gather* kernel: accumulate, at receiver
/// (cx, cy), the path-loss contributions of the transmitters in the SoA
/// columns. Lane i (position xs[i], ys[i], squared radius ws[i]) is
/// *eligible* iff
///
///   ws[i] > 0  &&  d2 > 0  &&  d2 <= ws[i] * cutoff_factor
///
/// (a radius-0 node does not transmit; coincident nodes — d2 == 0, which
/// includes the receiver's own lane — are excluded, so no id bookkeeping is
/// needed; beyond the far-field cutoff the contribution truncates to 0).
/// An eligible lane contributes
///
///   (kappa * ws[i]^h) / d2^h        (h = half_alpha = alpha / 2)
///
/// with both powers evaluated by detail::ipow's left-associated product and
/// d2 by the two-rounding squared_distance — the exact arithmetic shape of
/// the vector backends, never fused. `significant` counts eligible lanes
/// whose contribution is >= sig (sig must be > 0).
///
/// Accumulation order is part of the contract (floating-point addition does
/// not commute): the even prefix m = n & ~1 accumulates into two lane
/// accumulators (acc0 for even i, acc1 for odd i), power starts as
/// acc0 + acc1, and the odd tail element (if any) is added last — exactly
/// the order of the width-2 vector backends.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline SinrAccum
sinr_gather_scalar(const double* xs, const double* ys, const double* ws,
                   std::size_t n, double cx, double cy, double cutoff_factor,
                   double kappa, int half_alpha, double sig) {
  RIM_SIMD_NO_CONTRACT
  SinrAccum out;
  double acc0 = 0.0;
  double acc1 = 0.0;
  const std::size_t m = n & ~std::size_t{1};
  const auto contribution = [&](std::size_t i) -> double {
    const double d2 = detail::squared_distance(xs[i], ys[i], cx, cy);
    if (!(ws[i] > 0.0) || !(d2 > 0.0) || !(d2 <= ws[i] * cutoff_factor)) {
      return 0.0;
    }
    const double c = detail::div_allow_zero(
        kappa * detail::ipow(ws[i], half_alpha), detail::ipow(d2, half_alpha));
    if (c >= sig) ++out.significant;
    return c;
  };
  for (std::size_t i = 0; i < m; i += 2) {
    acc0 += contribution(i);
    acc1 += contribution(i + 1);
  }
  out.power = acc0 + acc1;
  for (std::size_t i = m; i < n; ++i) out.power += contribution(i);
  return out;
}

/// Scalar reference for the SINR *scatter* kernel: per-lane contributions
/// of ONE transmitter at (cx, cy) with precomputed emitted power
/// `power` (= kappa * w^h) and far-field cutoff `cutoff2`
/// (= w * cutoff_factor), written to out[i]:
///
///   out[i] = (0 < d2 && d2 <= cutoff2) ? power / d2^h : 0.0
///
/// Purely lane-wise (no cross-lane accumulation), so the caller owns the
/// deterministic add-order when folding lanes into per-receiver totals.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline void
sinr_scatter_scalar(const double* xs, const double* ys, std::size_t n,
                    double cx, double cy, double cutoff2, double power,
                    int half_alpha, double* out) {
  RIM_SIMD_NO_CONTRACT
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = detail::squared_distance(xs[i], ys[i], cx, cy);
    out[i] = (d2 > 0.0 && d2 <= cutoff2)
                 ? detail::div_allow_zero(power, detail::ipow(d2, half_alpha))
                 : 0.0;
  }
}

#if defined(RIM_SIMD_SSE2)

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  const __m128d vq = _mm_set1_pd(query_r2);
  const __m128d vzero = _mm_setzero_pd();
  std::uint64_t visited = 0;
  std::uint64_t covered = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const __m128d w = _mm_loadu_pd(ws + i);
    const __m128d in_q = _mm_cmple_pd(d2, vq);
    const __m128d cov = _mm_and_pd(
        in_q, _mm_and_pd(_mm_cmpgt_pd(w, vzero), _mm_cmple_pd(d2, w)));
    visited += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(in_q))));
    covered += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(cov))));
  }
  const CoverageCounts tail =
      count_coverage_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, query_r2);
  return {visited + tail.visited, covered + tail.covered};
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    _mm_storeu_pd(out + i,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  squared_distances_scalar(xs + i, ys + i, n - i, cx, cy, out + i);
}

namespace detail {

/// Vector twin of detail::ipow — same h-1 multiplies, same association.
inline __m128d ipow(__m128d x, int h) {
  __m128d r = x;
  for (int k = 1; k < h; ++k) r = _mm_mul_pd(r, x);
  return r;
}

}  // namespace detail

inline SinrAccum sinr_gather(const double* xs, const double* ys,
                             const double* ws, std::size_t n, double cx,
                             double cy, double cutoff_factor, double kappa,
                             int half_alpha, double sig) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  const __m128d vcf = _mm_set1_pd(cutoff_factor);
  const __m128d vkappa = _mm_set1_pd(kappa);
  const __m128d vsig = _mm_set1_pd(sig);
  const __m128d vzero = _mm_setzero_pd();
  // Lane 0 of vacc is the scalar reference's acc0, lane 1 its acc1.
  __m128d vacc = _mm_setzero_pd();
  std::uint64_t significant = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const __m128d w = _mm_loadu_pd(ws + i);
    const __m128d elig = _mm_and_pd(
        _mm_and_pd(_mm_cmpgt_pd(w, vzero), _mm_cmpgt_pd(d2, vzero)),
        _mm_cmple_pd(d2, _mm_mul_pd(w, vcf)));
    // Divide first, mask after: an ineligible lane may produce inf/NaN
    // (d2 == 0), but and-with-mask zeroes its bits, and adding the
    // resulting +0.0 matches the scalar reference's `acc += 0.0` exactly.
    const __m128d c = _mm_and_pd(
        elig, _mm_div_pd(_mm_mul_pd(vkappa, detail::ipow(w, half_alpha)),
                         detail::ipow(d2, half_alpha)));
    vacc = _mm_add_pd(vacc, c);
    // Significance is a property of *eligible* lanes only: intersect with
    // elig so a masked-out lane's +0.0 cannot count when sig <= 0 (the
    // scalar reference never reaches its comparison for those lanes).
    significant += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm_movemask_pd(_mm_and_pd(elig, _mm_cmpge_pd(c, vsig))))));
  }
  SinrAccum out;
  double lanes[2];
  _mm_storeu_pd(lanes, vacc);
  out.power = lanes[0] + lanes[1];
  out.significant = significant;
  const SinrAccum tail =
      sinr_gather_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, cutoff_factor,
                         kappa, half_alpha, sig);
  out.power += tail.power;
  out.significant += tail.significant;
  return out;
}

inline void sinr_scatter(const double* xs, const double* ys, std::size_t n,
                         double cx, double cy, double cutoff2, double power,
                         int half_alpha, double* out) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  const __m128d vc2 = _mm_set1_pd(cutoff2);
  const __m128d vp = _mm_set1_pd(power);
  const __m128d vzero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const __m128d elig =
        _mm_and_pd(_mm_cmpgt_pd(d2, vzero), _mm_cmple_pd(d2, vc2));
    _mm_storeu_pd(out + i,
                  _mm_and_pd(elig, _mm_div_pd(
                                       vp, detail::ipow(d2, half_alpha))));
  }
  sinr_scatter_scalar(xs + i, ys + i, n - i, cx, cy, cutoff2, power,
                      half_alpha, out + i);
}

#elif defined(RIM_SIMD_NEON)

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  const float64x2_t vq = vdupq_n_f64(query_r2);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::uint64_t visited = 0;
  std::uint64_t covered = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    // vmulq + vaddq, never vfmaq: fusing would change the rounding and
    // break bit-identity with the scalar kernels.
    const float64x2_t d2 =
        vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    const float64x2_t w = vld1q_f64(ws + i);
    const uint64x2_t in_q = vcleq_f64(d2, vq);
    const uint64x2_t cov = vandq_u64(
        in_q, vandq_u64(vcgtq_f64(w, vzero), vcleq_f64(d2, w)));
    visited += (vgetq_lane_u64(in_q, 0) & 1) + (vgetq_lane_u64(in_q, 1) & 1);
    covered += (vgetq_lane_u64(cov, 0) & 1) + (vgetq_lane_u64(cov, 1) & 1);
  }
  const CoverageCounts tail =
      count_coverage_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, query_r2);
  return {visited + tail.visited, covered + tail.covered};
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    vst1q_f64(out + i, vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
  }
  squared_distances_scalar(xs + i, ys + i, n - i, cx, cy, out + i);
}

namespace detail {

/// Vector twin of detail::ipow — same h-1 multiplies, same association.
/// vmulq is never contracted into an FMA.
inline float64x2_t ipow(float64x2_t x, int h) {
  float64x2_t r = x;
  for (int k = 1; k < h; ++k) r = vmulq_f64(r, x);
  return r;
}

}  // namespace detail

inline SinrAccum sinr_gather(const double* xs, const double* ys,
                             const double* ws, std::size_t n, double cx,
                             double cy, double cutoff_factor, double kappa,
                             int half_alpha, double sig) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  const float64x2_t vcf = vdupq_n_f64(cutoff_factor);
  const float64x2_t vkappa = vdupq_n_f64(kappa);
  const float64x2_t vsig = vdupq_n_f64(sig);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  // Lane 0 of vacc is the scalar reference's acc0, lane 1 its acc1.
  float64x2_t vacc = vdupq_n_f64(0.0);
  std::uint64_t significant = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    const float64x2_t d2 = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    const float64x2_t w = vld1q_f64(ws + i);
    const uint64x2_t elig = vandq_u64(
        vandq_u64(vcgtq_f64(w, vzero), vcgtq_f64(d2, vzero)),
        vcleq_f64(d2, vmulq_f64(w, vcf)));
    // Divide first, mask after: an ineligible lane may produce inf/NaN
    // (d2 == 0), but and-with-mask zeroes its bits, and adding the
    // resulting +0.0 matches the scalar reference's `acc += 0.0` exactly.
    const float64x2_t raw =
        vdivq_f64(vmulq_f64(vkappa, detail::ipow(w, half_alpha)),
                  detail::ipow(d2, half_alpha));
    const float64x2_t c =
        vreinterpretq_f64_u64(vandq_u64(elig, vreinterpretq_u64_f64(raw)));
    vacc = vaddq_f64(vacc, c);
    // Significance is a property of *eligible* lanes only: intersect with
    // elig so a masked-out lane's +0.0 cannot count when sig <= 0 (the
    // scalar reference never reaches its comparison for those lanes).
    const uint64x2_t sigm = vandq_u64(elig, vcgeq_f64(c, vsig));
    significant +=
        (vgetq_lane_u64(sigm, 0) & 1) + (vgetq_lane_u64(sigm, 1) & 1);
  }
  SinrAccum out;
  out.power = vgetq_lane_f64(vacc, 0) + vgetq_lane_f64(vacc, 1);
  out.significant = significant;
  const SinrAccum tail =
      sinr_gather_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, cutoff_factor,
                         kappa, half_alpha, sig);
  out.power += tail.power;
  out.significant += tail.significant;
  return out;
}

inline void sinr_scatter(const double* xs, const double* ys, std::size_t n,
                         double cx, double cy, double cutoff2, double power,
                         int half_alpha, double* out) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  const float64x2_t vc2 = vdupq_n_f64(cutoff2);
  const float64x2_t vp = vdupq_n_f64(power);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    const float64x2_t d2 = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    const uint64x2_t elig =
        vandq_u64(vcgtq_f64(d2, vzero), vcleq_f64(d2, vc2));
    const float64x2_t c = vreinterpretq_f64_u64(vandq_u64(
        elig,
        vreinterpretq_u64_f64(vdivq_f64(vp, detail::ipow(d2, half_alpha)))));
    vst1q_f64(out + i, c);
  }
  sinr_scatter_scalar(xs + i, ys + i, n - i, cx, cy, cutoff2, power,
                      half_alpha, out + i);
}

#else  // scalar backend

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  return count_coverage_scalar(xs, ys, ws, n, cx, cy, query_r2);
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  squared_distances_scalar(xs, ys, n, cx, cy, out);
}

inline SinrAccum sinr_gather(const double* xs, const double* ys,
                             const double* ws, std::size_t n, double cx,
                             double cy, double cutoff_factor, double kappa,
                             int half_alpha, double sig) {
  return sinr_gather_scalar(xs, ys, ws, n, cx, cy, cutoff_factor, kappa,
                            half_alpha, sig);
}

inline void sinr_scatter(const double* xs, const double* ys, std::size_t n,
                         double cx, double cy, double cutoff2, double power,
                         int half_alpha, double* out) {
  sinr_scatter_scalar(xs, ys, n, cx, cy, cutoff2, power, half_alpha, out);
}

#endif

#undef RIM_SIMD_NO_CONTRACT

}  // namespace rim::simd
