#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#define RIM_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define RIM_SIMD_NEON 1
#endif

/// \file simd.hpp
/// Portable explicit-SIMD kernels for the disk-coverage hot loops.
///
/// The receiver-centric model is built entirely from one predicate — the
/// exact closed-disk containment test `d2 <= r2` with
/// `d2 = dx*dx + dy*dy` evaluated in double precision — over
/// structure-of-arrays columns (geom::DynamicGrid cells, core::NodeSoA).
/// That predicate vectorises losslessly: each lane computes the identical
/// two multiplies and one add in round-to-nearest double, the comparison
/// is exact, and the counts are integers, so the SIMD kernels are
/// bit-identical to the scalar loops (tests/simd_test.cpp pins this on
/// denormals and exact-boundary radii; the E18/E21 benches pin it on
/// 100k-node instances).
///
/// Fused multiply-add is the one instruction that could break identity
/// (one rounding instead of two), so the kernels only ever use explicit
/// non-fused multiply and add intrinsics, and the scalar fallbacks disable
/// floating-point contraction. x86-64's SSE2 baseline has no FMA at all;
/// on AArch64 the explicit vmulq/vaddq intrinsics are never contracted.
///
/// Two width-2 backends (SSE2 __m128d, NEON float64x2) plus an
/// auto-vectorisation-friendly scalar fallback. Every kernel has a
/// `_scalar` twin compiled unconditionally — the identity tests compare
/// the active backend against it directly.

namespace rim::simd {

#if defined(RIM_SIMD_SSE2)
inline constexpr bool kHaveSimd = true;
inline constexpr std::string_view kBackend = "sse2";
#elif defined(RIM_SIMD_NEON)
inline constexpr bool kHaveSimd = true;
inline constexpr std::string_view kBackend = "neon";
#else
inline constexpr bool kHaveSimd = false;
inline constexpr std::string_view kBackend = "scalar";
#endif

/// Counts from one coverage pass over a SoA column block (see
/// count_coverage).
struct CoverageCounts {
  std::uint64_t visited = 0;  ///< lanes with d2 <= query_r2
  std::uint64_t covered = 0;  ///< lanes with d2 <= query_r2, w > 0, d2 <= w
};

namespace detail {

#if defined(__clang__)
#define RIM_SIMD_NO_CONTRACT _Pragma("clang fp contract(off)")
#else
#define RIM_SIMD_NO_CONTRACT
#endif

/// d2 = dx*dx + dy*dy with two roundings — the exact arithmetic shape of
/// geom::dist2 and of both vector backends (never fused).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline double
squared_distance(double x, double y, double cx, double cy) {
  RIM_SIMD_NO_CONTRACT
  const double dx = x - cx;
  const double dy = y - cy;
  return dx * dx + dy * dy;
}

}  // namespace detail

/// Scalar reference: for each i in [0, n), with d2 computed as above,
/// visited counts d2 <= query_r2 and covered counts
/// d2 <= query_r2 && ws[i] > 0 && d2 <= ws[i]. All comparisons exact;
/// NaN coordinates compare false everywhere, matching the `<=` loops.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline CoverageCounts
count_coverage_scalar(const double* xs, const double* ys, const double* ws,
                      std::size_t n, double cx, double cy, double query_r2) {
  RIM_SIMD_NO_CONTRACT
  CoverageCounts out;
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = detail::squared_distance(xs[i], ys[i], cx, cy);
    if (d2 <= query_r2) {
      ++out.visited;
      if (ws[i] > 0.0 && d2 <= ws[i]) ++out.covered;
    }
  }
  return out;
}

/// Scalar reference for squared_distances: out[i] = d2(i).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
inline void
squared_distances_scalar(const double* xs, const double* ys, std::size_t n,
                         double cx, double cy, double* out) {
  RIM_SIMD_NO_CONTRACT
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = detail::squared_distance(xs[i], ys[i], cx, cy);
  }
}

#if defined(RIM_SIMD_SSE2)

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  const __m128d vq = _mm_set1_pd(query_r2);
  const __m128d vzero = _mm_setzero_pd();
  std::uint64_t visited = 0;
  std::uint64_t covered = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    const __m128d d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    const __m128d w = _mm_loadu_pd(ws + i);
    const __m128d in_q = _mm_cmple_pd(d2, vq);
    const __m128d cov = _mm_and_pd(
        in_q, _mm_and_pd(_mm_cmpgt_pd(w, vzero), _mm_cmple_pd(d2, w)));
    visited += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(in_q))));
    covered += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(cov))));
  }
  const CoverageCounts tail =
      count_coverage_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, query_r2);
  return {visited + tail.visited, covered + tail.covered};
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  const __m128d vcx = _mm_set1_pd(cx);
  const __m128d vcy = _mm_set1_pd(cy);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vcx);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vcy);
    _mm_storeu_pd(out + i,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  squared_distances_scalar(xs + i, ys + i, n - i, cx, cy, out + i);
}

#elif defined(RIM_SIMD_NEON)

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  const float64x2_t vq = vdupq_n_f64(query_r2);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::uint64_t visited = 0;
  std::uint64_t covered = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    // vmulq + vaddq, never vfmaq: fusing would change the rounding and
    // break bit-identity with the scalar kernels.
    const float64x2_t d2 =
        vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
    const float64x2_t w = vld1q_f64(ws + i);
    const uint64x2_t in_q = vcleq_f64(d2, vq);
    const uint64x2_t cov = vandq_u64(
        in_q, vandq_u64(vcgtq_f64(w, vzero), vcleq_f64(d2, w)));
    visited += (vgetq_lane_u64(in_q, 0) & 1) + (vgetq_lane_u64(in_q, 1) & 1);
    covered += (vgetq_lane_u64(cov, 0) & 1) + (vgetq_lane_u64(cov, 1) & 1);
  }
  const CoverageCounts tail =
      count_coverage_scalar(xs + i, ys + i, ws + i, n - i, cx, cy, query_r2);
  return {visited + tail.visited, covered + tail.covered};
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  const float64x2_t vcx = vdupq_n_f64(cx);
  const float64x2_t vcy = vdupq_n_f64(cy);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vcx);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vcy);
    vst1q_f64(out + i, vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
  }
  squared_distances_scalar(xs + i, ys + i, n - i, cx, cy, out + i);
}

#else  // scalar backend

inline CoverageCounts count_coverage(const double* xs, const double* ys,
                                     const double* ws, std::size_t n,
                                     double cx, double cy, double query_r2) {
  return count_coverage_scalar(xs, ys, ws, n, cx, cy, query_r2);
}

inline void squared_distances(const double* xs, const double* ys,
                              std::size_t n, double cx, double cy,
                              double* out) {
  squared_distances_scalar(xs, ys, n, cx, cy, out);
}

#endif

#undef RIM_SIMD_NO_CONTRACT

}  // namespace rim::simd
