#include "rim/highway/interference_1d.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

#include "rim/core/radii.hpp"

namespace rim::highway {

namespace {

/// Index range [first, last) of xs covered by the closed interval
/// [x - r, x + r]. Containment is decided by the single-rounded comparison
/// |x_v - x| <= r, NOT by the pre-rounded endpoints x -+ r: radii are
/// themselves computed as coordinate differences (r = x_child - x_hub), so a
/// child's disk must cover its hub *exactly*, and fl(x - fl(x - x_hub)) can
/// land one ulp off x_hub. The binary searches give a near-correct range
/// that is then nudged with the exact test.
std::pair<std::size_t, std::size_t> range_for(std::span<const double> xs, double x,
                                              double r) {
  auto first = static_cast<std::size_t>(
      std::lower_bound(xs.begin(), xs.end(), x - r) - xs.begin());
  auto last = static_cast<std::size_t>(
      std::upper_bound(xs.begin(), xs.end(), x + r) - xs.begin());
  while (first > 0 && x - xs[first - 1] <= r) --first;
  while (first < xs.size() && x - xs[first] > r) ++first;
  while (last < xs.size() && xs[last] - x <= r) ++last;
  while (last > first && xs[last - 1] - x > r) --last;
  return {first, last};
}

}  // namespace

std::vector<std::uint32_t> interference_1d(std::span<const double> xs,
                                           std::span<const double> radii) {
  assert(xs.size() == radii.size());
  assert(std::is_sorted(xs.begin(), xs.end()));
  // Difference array over node indices; +1 on [first, last) per transmitter.
  std::vector<std::int64_t> diff(xs.size() + 1, 0);
  for (NodeId u = 0; u < xs.size(); ++u) {
    if (radii[u] <= 0.0) continue;
    const auto [first, last] = range_for(xs, xs[u], radii[u]);
    ++diff[first];
    --diff[last];
  }
  std::vector<std::uint32_t> out(xs.size(), 0);
  std::int64_t running = 0;
  for (std::size_t v = 0; v < xs.size(); ++v) {
    running += diff[v];
    // Subtract self-coverage: u always covers itself when r_u > 0.
    const std::int64_t self = radii[v] > 0.0 ? 1 : 0;
    out[v] = static_cast<std::uint32_t>(running - self);
  }
  return out;
}

std::uint32_t graph_interference_1d(const HighwayInstance& instance,
                                    const graph::Graph& topology) {
  // 1-D radii computed directly as coordinate differences: exact, no sqrt.
  const auto& xs = instance.positions();
  std::vector<double> radii(xs.size(), 0.0);
  for (NodeId u = 0; u < xs.size(); ++u) {
    for (NodeId v : topology.neighbors(u)) {
      radii[u] = std::max(radii[u], std::abs(xs[v] - xs[u]));
    }
  }
  const auto per_node = interference_1d(xs, radii);
  std::uint32_t max = 0;
  for (std::uint32_t i : per_node) max = std::max(max, i);
  return max;
}

Coverage1D::Coverage1D(std::span<const double> xs)
    : xs_(xs), radius_(xs.size(), 0.0), count_(xs.size(), 0) {
  assert(std::is_sorted(xs_.begin(), xs_.end()));
}

std::pair<std::size_t, std::size_t> Coverage1D::covered_range(NodeId u,
                                                              double r) const {
  return range_for(xs_, xs_[u], r);
}

std::uint32_t Coverage1D::raise_radius(NodeId u, double radius) {
  if (radius <= radius_[u]) return max_;
  // Old and new covered ranges; the new one strictly contains the old.
  const auto [new_first, new_last] = covered_range(u, radius);
  std::size_t old_first = new_first;
  std::size_t old_last = new_first;
  if (radius_[u] > 0.0) {
    std::tie(old_first, old_last) = covered_range(u, radius_[u]);
  } else {
    old_first = old_last = static_cast<std::size_t>(u);  // only itself, excluded
    // When the radius was 0 the node covered nothing (not even itself for
    // interference purposes); treat the old range as the singleton {u}.
    old_last = old_first + 1;
  }
  radius_[u] = radius;
  for (std::size_t v = new_first; v < old_first; ++v) {
    if (v != u) max_ = std::max(max_, ++count_[v]);
  }
  for (std::size_t v = old_last; v < new_last; ++v) {
    if (v != u) max_ = std::max(max_, ++count_[v]);
  }
  return max_;
}

}  // namespace rim::highway
