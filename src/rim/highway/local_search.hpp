#pragma once

#include <cstdint>
#include <span>

#include "rim/core/interference.hpp"
#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file local_search.hpp
/// Edge-swap local search for low-interference spanning trees.
///
/// Not part of the paper's algorithms — a heuristic baseline the experiment
/// harness uses to approximate the optimum where exhaustive search is out of
/// reach (n > 9). Starting from any connectivity-preserving tree/forest, it
/// repeatedly removes one tree edge and reconnects the two sides with the
/// UDG edge that minimises (max interference, total interference),
/// accepting strictly improving swaps until a local optimum.

namespace rim::highway {

struct LocalSearchParams {
  std::size_t max_rounds = 64;  ///< full improvement sweeps before giving up
  /// Candidate replacement edges evaluated per removed edge: the k shortest
  /// UDG edges crossing the cut (0 = all). Each candidate costs a full
  /// interference evaluation, so dense UDGs need a cap.
  std::size_t max_candidates_per_cut = 0;
  /// Evaluation configuration for the probing Scenario (strategy and
  /// incremental thresholds) — the shared core::EvalOptions surface.
  /// Configure with the builder setters, e.g.
  /// `core::EvalOptions{}.with_touched_floor(128)`.
  core::EvalOptions eval{};
};

struct LocalSearchResult {
  graph::Graph tree;
  std::uint32_t interference = 0;
  std::size_t swaps_applied = 0;
  bool reached_local_optimum = false;
  /// Observability: candidate swaps probed and wall time spent probing.
  std::size_t candidates_probed = 0;
  std::uint64_t probe_ns = 0;
};

/// Improve \p seed (must be a forest spanning the UDG's components; its
/// edges must be UDG edges). Deterministic.
[[nodiscard]] LocalSearchResult local_search_min_interference(
    std::span<const geom::Vec2> points, const graph::Graph& udg,
    const graph::Graph& seed, LocalSearchParams params = {});

}  // namespace rim::highway
