#pragma once

#include <cstdint>

#include "rim/graph/graph.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file a_apx.hpp
/// Algorithm A_apx (Section 5.3): the O(Δ^{1/4})-approximation for the
/// highway model.
///
/// A_apx computes γ, the maximum number of critical nodes over all nodes
/// (Definition 5.2). If γ > sqrt(Δ) the instance is inherently
/// high-interference and A_gen is applied (O(sqrt Δ) against the Ω(sqrt γ)
/// optimum); otherwise the nodes are connected linearly (interference γ by
/// definition). Either way the ratio is O(Δ^{1/4}) (Theorem 5.6).

namespace rim::highway {

struct AApxResult {
  graph::Graph topology;
  bool used_agen = false;     ///< which branch Theorem 5.6's case split took
  std::uint32_t gamma = 0;    ///< the instance's critical number
  std::size_t delta = 0;      ///< max UDG degree
};

[[nodiscard]] AApxResult a_apx(const HighwayInstance& instance, double radius = 1.0);

}  // namespace rim::highway
