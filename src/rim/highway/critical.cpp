#include "rim/highway/critical.hpp"

#include <algorithm>
#include <cmath>

#include "rim/highway/interference_1d.hpp"

namespace rim::highway {

std::vector<double> linear_radii(const HighwayInstance& instance, double radius) {
  const auto& xs = instance.positions();
  std::vector<double> radii(xs.size(), 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double r = 0.0;
    if (i > 0) {
      const double gap = xs[i] - xs[i - 1];
      if (gap <= radius) r = std::max(r, gap);
    }
    if (i + 1 < xs.size()) {
      const double gap = xs[i + 1] - xs[i];
      if (gap <= radius) r = std::max(r, gap);
    }
    radii[i] = r;
  }
  return radii;
}

std::vector<std::uint32_t> critical_counts(const HighwayInstance& instance,
                                           double radius) {
  return interference_1d(instance.positions(), linear_radii(instance, radius));
}

std::vector<NodeId> critical_set(const HighwayInstance& instance, NodeId v,
                                 double radius) {
  const auto& xs = instance.positions();
  const std::vector<double> radii = linear_radii(instance, radius);
  std::vector<NodeId> members;
  for (NodeId u = 0; u < xs.size(); ++u) {
    if (u == v || radii[u] <= 0.0) continue;
    if (std::abs(xs[u] - xs[v]) <= radii[u]) members.push_back(u);
  }
  return members;
}

std::uint32_t gamma(const HighwayInstance& instance, double radius) {
  std::uint32_t best = 0;
  for (std::uint32_t c : critical_counts(instance, radius)) best = std::max(best, c);
  return best;
}

}  // namespace rim::highway
