#pragma once

#include <cstdint>

/// \file bounds.hpp
/// Closed-form bounds from Section 5, used to validate the measured
/// interference of the algorithms against the theory.

namespace rim::highway {

/// Theorem 5.2 (made exact from its counting argument): any connected
/// topology for the exponential node chain on n nodes has interference I
/// with n <= I^2 + 1 — with H <= I + 1 hubs, each hub of degree <= I, the
/// instance can host at most (I+1) + (I+1)(I-2) + 2 = I^2 + 1 nodes. Hence
/// I >= ceil(sqrt(n - 1)).
[[nodiscard]] std::uint32_t exponential_chain_lower_bound(std::size_t n);

/// Theorem 5.1: A_exp on the exponential node chain reaches interference I
/// only after at least n = I^2/2 - I/2 + 2 nodes, so
/// I <= (1 + sqrt(8n - 15)) / 2 for n >= 2 — the O(sqrt n) upper bound.
[[nodiscard]] std::uint32_t aexp_upper_bound(std::size_t n);

/// Lemma 5.5: a minimum-interference topology of an instance with critical
/// number gamma has interference Omega(sqrt(gamma)); quantitatively, the
/// nodes of C_v on one side of v form a virtual exponential chain of length
/// >= gamma/2, so Theorem 5.2 gives I >= sqrt(gamma/2 - 1) (0 when the
/// expression is not positive).
[[nodiscard]] double lemma55_lower_bound(std::uint32_t gamma);

}  // namespace rim::highway
