#include "rim/highway/bounds.hpp"

#include <cmath>

namespace rim::highway {

std::uint32_t exponential_chain_lower_bound(std::size_t n) {
  if (n < 2) return 0;
  // Smallest integer I with I^2 + 1 >= n, found without floating error.
  std::uint32_t i = static_cast<std::uint32_t>(
      std::floor(std::sqrt(static_cast<double>(n - 1))));
  while (static_cast<std::size_t>(i) * i + 1 < n) ++i;
  while (i > 0 && (static_cast<std::size_t>(i) - 1) * (i - 1) + 1 >= n) --i;
  return i;
}

std::uint32_t aexp_upper_bound(std::size_t n) {
  if (n < 2) return 0;
  if (n == 2) return 1;
  const double i = (1.0 + std::sqrt(8.0 * static_cast<double>(n) - 15.0)) / 2.0;
  return static_cast<std::uint32_t>(std::ceil(i));
}

double lemma55_lower_bound(std::uint32_t gamma) {
  const double arg = static_cast<double>(gamma) / 2.0 - 1.0;
  return arg > 0.0 ? std::sqrt(arg) : 0.0;
}

}  // namespace rim::highway
