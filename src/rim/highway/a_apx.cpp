#include "rim/highway/a_apx.hpp"

#include <cmath>

#include "rim/highway/a_gen.hpp"
#include "rim/highway/critical.hpp"
#include "rim/highway/linear_chain.hpp"

namespace rim::highway {

AApxResult a_apx(const HighwayInstance& instance, double radius) {
  AApxResult result;
  result.gamma = gamma(instance, radius);
  result.delta = instance.max_degree(radius);
  if (static_cast<double>(result.gamma) >
      std::sqrt(static_cast<double>(result.delta))) {
    result.used_agen = true;
    result.topology = a_gen(instance, radius).topology;
  } else {
    result.topology = linear_chain(instance, radius);
  }
  return result;
}

}  // namespace rim::highway
