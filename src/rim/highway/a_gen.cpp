#include "rim/highway/a_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rim::highway {

AGenResult a_gen(const HighwayInstance& instance, double radius,
                 std::size_t spacing_override) {
  const auto& xs = instance.positions();
  AGenResult result;
  result.topology = graph::Graph(xs.size());
  if (xs.empty()) return result;

  result.delta = instance.max_degree(radius);
  result.hub_spacing =
      spacing_override != 0
          ? spacing_override
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(std::sqrt(static_cast<double>(result.delta)))));

  // Group nodes by segment: seg(x) = floor((x - x_min) / radius). Nodes of
  // one segment occupy a contiguous index range since xs is sorted.
  const double x0 = xs.front();
  const auto segment_of = [&](std::size_t i) {
    return static_cast<std::size_t>(std::floor((xs[i] - x0) / radius));
  };

  std::size_t begin = 0;
  std::size_t prev_end = 0;  // one-past-last node of the previous segment
  bool have_prev = false;
  while (begin < xs.size()) {
    const std::size_t seg = segment_of(begin);
    std::size_t end = begin + 1;
    while (end < xs.size() && segment_of(end) == seg) ++end;
    ++result.segment_count;

    // Hubs: every spacing-th node from the left plus the rightmost node.
    std::vector<NodeId> hubs;
    for (std::size_t i = begin; i < end; i += result.hub_spacing) {
      hubs.push_back(static_cast<NodeId>(i));
    }
    if (hubs.back() != static_cast<NodeId>(end - 1)) {
      hubs.push_back(static_cast<NodeId>(end - 1));
    }
    for (std::size_t h = 0; h + 1 < hubs.size(); ++h) {
      result.topology.add_edge(hubs[h], hubs[h + 1]);
    }
    // Regular nodes connect to the nearest of their interval's two hubs
    // (ties toward the left hub, matching "ties are broken arbitrarily").
    std::size_t h = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeId node = static_cast<NodeId>(i);
      if (h + 1 < hubs.size() && hubs[h + 1] <= node) ++h;
      if (node == hubs[h] || (h + 1 < hubs.size() && node == hubs[h + 1])) continue;
      const NodeId left = hubs[h];
      const NodeId right = hubs[std::min(h + 1, hubs.size() - 1)];
      const double dl = xs[i] - xs[left];
      const double dr = xs[right] - xs[i];
      result.topology.add_edge(node, dl <= dr ? left : right);
    }
    result.hubs.insert(result.hubs.end(), hubs.begin(), hubs.end());

    // Stitch to the previous non-empty segment via the boundary nodes; skip
    // when the gap exceeds the radius (the UDG is disconnected there too).
    if (have_prev && xs[begin] - xs[prev_end - 1] <= radius) {
      result.topology.add_edge(static_cast<NodeId>(prev_end - 1),
                               static_cast<NodeId>(begin));
    }
    prev_end = end;
    have_prev = true;
    begin = end;
  }
  return result;
}

}  // namespace rim::highway
