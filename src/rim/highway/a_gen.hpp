#pragma once

#include <cstddef>
#include <vector>

#include "rim/graph/graph.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file a_gen.hpp
/// Algorithm A_gen (Section 5.2): the worst-case O(sqrt Δ) construction for
/// arbitrary highway instances.
///
/// The highway is partitioned into segments of length equal to the
/// transmission radius (unit length in the paper). Within each segment
/// every ⌈sqrt(Δ)⌉-th node — plus the segment's rightmost node — becomes a
/// hub; hubs are connected linearly and every regular node connects to the
/// nearest hub of its interval. Adjacent segments are stitched together by
/// an edge between the boundary nodes. Theorem 5.4: interference O(sqrt Δ).

namespace rim::highway {

struct AGenResult {
  graph::Graph topology;
  std::vector<NodeId> hubs;       ///< all hubs, ascending
  std::size_t delta = 0;          ///< max UDG degree Δ of the instance
  std::size_t hub_spacing = 1;    ///< the ⌈sqrt Δ⌉ (or overridden) spacing
  std::size_t segment_count = 0;  ///< number of non-empty segments
};

/// Run A_gen with transmission radius \p radius. \p spacing_override
/// replaces ⌈sqrt Δ⌉ when non-zero (used by the ablation experiment).
[[nodiscard]] AGenResult a_gen(const HighwayInstance& instance, double radius = 1.0,
                               std::size_t spacing_override = 0);

}  // namespace rim::highway
