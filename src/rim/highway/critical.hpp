#pragma once

#include <cstdint>
#include <vector>

#include "rim/highway/highway_instance.hpp"

/// \file critical.hpp
/// Critical node sets (Definition 5.2): C_v are the nodes that interfere
/// with v when the instance is connected linearly; γ = max_v |C_v| is the
/// instance's inherent-interference indicator. Lemma 5.5 lower-bounds any
/// connectivity-preserving topology's interference by Ω(√γ), which is what
/// lets A_apx decide between the linear chain and A_gen.

namespace rim::highway {

/// Radii of the linearly connected graph G_lin: for interior nodes the
/// larger of the two adjacent gaps, for the end nodes the single gap.
/// Gaps above \p radius carry no edge and do not contribute.
[[nodiscard]] std::vector<double> linear_radii(const HighwayInstance& instance,
                                               double radius = 1.0);

/// |C_v| for every node v (== per-node interference of the linear chain).
[[nodiscard]] std::vector<std::uint32_t> critical_counts(
    const HighwayInstance& instance, double radius = 1.0);

/// The members of C_v, ascending by node id.
[[nodiscard]] std::vector<NodeId> critical_set(const HighwayInstance& instance,
                                               NodeId v, double radius = 1.0);

/// γ = max_v |C_v| (0 for n < 2).
[[nodiscard]] std::uint32_t gamma(const HighwayInstance& instance,
                                  double radius = 1.0);

}  // namespace rim::highway
