#include "rim/highway/local_search.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/union_find.hpp"
#include "rim/obs/metrics.hpp"

namespace rim::highway {

namespace {

/// Objective: lexicographic (max interference, total interference).
using Objective = std::pair<std::uint32_t, std::uint64_t>;

/// Probing a candidate swap costs one incremental edge delta on the live
/// Scenario (plus an O(n) aggregate scan) instead of the full from-scratch
/// evaluation the pre-Scenario implementation paid per candidate.
Objective evaluate(core::Scenario& scenario) {
  return {scenario.max_interference(), scenario.total_interference()};
}

/// Component labels of `tree` with edge `skip` removed.
std::vector<std::uint32_t> split_labels(const graph::Graph& tree, graph::Edge skip) {
  graph::UnionFind uf(tree.node_count());
  for (graph::Edge e : tree.edges()) {
    if (e == skip) continue;
    uf.unite(e.u, e.v);
  }
  std::vector<std::uint32_t> labels(tree.node_count());
  for (NodeId v = 0; v < tree.node_count(); ++v) labels[v] = uf.find(v);
  return labels;
}

}  // namespace

LocalSearchResult local_search_min_interference(std::span<const geom::Vec2> points,
                                                const graph::Graph& udg,
                                                const graph::Graph& seed,
                                                LocalSearchParams params) {
  assert(graph::is_forest(seed));
  assert(graph::preserves_connectivity(udg, seed));

  LocalSearchResult result;
  result.tree = graph::Graph(seed.node_count(), seed.edges());
  // The Scenario mirrors result.tree edge-for-edge throughout the search;
  // candidate swaps are probed as add/remove deltas and rolled back.
  core::Scenario scenario(points, result.tree, params.eval);
  Objective current = evaluate(scenario);
  obs::Counter probe_ns;

  for (std::size_t round = 0; round < params.max_rounds; ++round) {
    bool improved = false;
    // Snapshot: the edge list mutates on swap, so iterate a copy.
    const std::vector<graph::Edge> tree_edges(result.tree.edges().begin(),
                                              result.tree.edges().end());
    for (graph::Edge removed : tree_edges) {
      const auto labels = split_labels(result.tree, removed);
      // Candidates: UDG edges crossing the cut, optionally capped to the
      // shortest ones (short replacements shrink radii, hence coverage).
      std::vector<graph::Edge> candidates;
      for (graph::Edge candidate : udg.edges()) {
        if (labels[candidate.u] != labels[candidate.v]) {
          candidates.push_back(candidate);
        }
      }
      if (params.max_candidates_per_cut != 0 &&
          candidates.size() > params.max_candidates_per_cut) {
        std::nth_element(
            candidates.begin(),
            candidates.begin() +
                static_cast<std::ptrdiff_t>(params.max_candidates_per_cut),
            candidates.end(), [&](graph::Edge a, graph::Edge b) {
              const double da = geom::dist2(points[a.u], points[a.v]);
              const double db = geom::dist2(points[b.u], points[b.v]);
              return da < db || (da == db && a < b);
            });
        candidates.resize(params.max_candidates_per_cut);
      }
      // Best replacement edge across the cut (the removed edge itself is a
      // candidate, in which case nothing changes).
      graph::Edge best_edge = removed;
      Objective best = current;
      result.tree.remove_edge(removed.u, removed.v);
      scenario.remove_edge(removed.u, removed.v);
      for (graph::Edge candidate : candidates) {
        const obs::ScopedTimer probe_timer(probe_ns);
        scenario.add_edge(candidate.u, candidate.v);
        const Objective obj = evaluate(scenario);
        scenario.remove_edge(candidate.u, candidate.v);
        ++result.candidates_probed;
        if (obj < best) {
          best = obj;
          best_edge = candidate;
        }
      }
      result.tree.add_edge(best_edge.u, best_edge.v);
      scenario.add_edge(best_edge.u, best_edge.v);
      if (best < current) {
        current = best;
        improved = true;
        ++result.swaps_applied;
      }
    }
    if (!improved) {
      result.reached_local_optimum = true;
      break;
    }
  }
  result.interference = current.first;
  result.probe_ns = probe_ns.value();
  return result;
}

}  // namespace rim::highway
