#include "rim/highway/highway_instance.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rim::highway {

HighwayInstance HighwayInstance::from_positions(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  HighwayInstance instance;
  instance.xs_ = std::move(xs);
  return instance;
}

geom::PointSet HighwayInstance::to_points() const {
  geom::PointSet points;
  points.reserve(xs_.size());
  for (double x : xs_) points.push_back({x, 0.0});
  return points;
}

graph::Graph HighwayInstance::udg(double radius) const {
  graph::Graph g(xs_.size());
  // Sorted coordinates: neighbors of i form a contiguous window.
  for (NodeId i = 0; i < xs_.size(); ++i) {
    for (NodeId j = i + 1; j < xs_.size() && xs_[j] - xs_[i] <= radius; ++j) {
      g.add_edge(i, j);
    }
  }
  return g;
}

std::size_t HighwayInstance::max_degree(double radius) const {
  std::size_t best = 0;
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    while (xs_[i] - xs_[lo] > radius) ++lo;
    while (hi + 1 < xs_.size() && xs_[hi + 1] - xs_[i] <= radius) ++hi;
    if (hi < i) hi = i;
    best = std::max(best, hi - lo);  // window size minus the node itself
  }
  return best;
}

bool HighwayInstance::udg_connected(double radius) const {
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] - xs_[i - 1] > radius) return false;
  }
  return true;
}

HighwayInstance exponential_chain(std::size_t n, double span) {
  assert(n >= 2 && n <= 1024);
  assert(span > 0.0);
  // Raw positions 0, 1, 3, 7, ..., 2^(n-1) - 1; then scale to the target
  // span. exp2 keeps full precision for every i < 1024.
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = std::exp2(static_cast<double>(i)) - 1.0;
  const double scale = span / xs.back();
  for (double& x : xs) x *= scale;
  return HighwayInstance::from_positions(std::move(xs));
}

}  // namespace rim::highway
