#pragma once

#include "rim/graph/graph.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file linear_chain.hpp
/// The linearly connected topology (Section 5.1): every node keeps an edge
/// to its nearest neighbor on each side. On the exponential node chain this
/// yields interference n - 2 at the leftmost node (Figure 7); on uniform
/// instances it is constant — the contrast A_apx exploits.

namespace rim::highway {

/// Connect consecutive nodes. Gaps larger than \p radius are skipped, so the
/// result is a valid UDG subgraph and connects exactly the UDG components.
[[nodiscard]] graph::Graph linear_chain(const HighwayInstance& instance,
                                        double radius = 1.0);

}  // namespace rim::highway
