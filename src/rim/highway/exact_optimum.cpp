#include "rim/highway/exact_optimum.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "rim/core/interference.hpp"
#include "rim/graph/connectivity.hpp"
#include "rim/graph/mst.hpp"
#include "rim/graph/tree_enum.hpp"
#include "rim/graph/union_find.hpp"

namespace rim::highway {

std::optional<ExactResult> exact_minimum_interference_tree(
    std::span<const geom::Vec2> points, const graph::Graph& udg, std::size_t max_n) {
  const std::size_t n = points.size();
  assert(n == udg.node_count());
  assert(n <= max_n && "exact search is exponential; raise max_n deliberately");
  (void)max_n;
  if (n < 2 || !graph::is_connected(udg)) return std::nullopt;

  std::uint32_t best_interference = std::numeric_limits<std::uint32_t>::max();
  std::vector<graph::Edge> best_edges;
  std::uint64_t considered = 0;

  // Reused scratch: squared radii and coverage counts per candidate tree.
  // Radii stay squared throughout so the farthest-neighbor containment test
  // is exact (no sqrt/square roundtrip).
  std::vector<double> radii2(n);
  std::vector<std::uint32_t> covered(n);

  graph::for_each_labeled_tree(n, [&](std::span<const graph::Edge> edges) {
    // Reject trees using edges absent from the UDG.
    for (graph::Edge e : edges) {
      if (!udg.has_edge(e.u, e.v)) return true;  // continue enumeration
    }
    ++considered;

    std::fill(radii2.begin(), radii2.end(), 0.0);
    for (graph::Edge e : edges) {
      const double d2 = geom::dist2(points[e.u], points[e.v]);
      radii2[e.u] = std::max(radii2[e.u], d2);
      radii2[e.v] = std::max(radii2[e.v], d2);
    }

    std::fill(covered.begin(), covered.end(), 0u);
    std::uint32_t max_i = 0;
    for (NodeId u = 0; u < n; ++u) {
      const double r2 = radii2[u];
      for (NodeId v = 0; v < n; ++v) {
        if (v != u && r2 > 0.0 && geom::dist2(points[u], points[v]) <= r2) {
          max_i = std::max(max_i, ++covered[v]);
          if (max_i >= best_interference) return true;  // prune: cannot win
        }
      }
    }
    if (max_i < best_interference) {
      best_interference = max_i;
      best_edges.assign(edges.begin(), edges.end());
    }
    return true;
  });

  ExactResult result;
  result.tree = graph::Graph(n, best_edges);
  result.interference = best_interference;
  result.trees_considered = considered;
  return result;
}

namespace {

/// Shared state of the branch-and-bound DFS.
struct BbContext {
  std::span<const geom::Vec2> points;
  std::vector<graph::Edge> edges;        // UDG edges, shortest first
  std::vector<double> edge_d2;           // squared length per edge
  std::uint64_t max_states = 0;
  std::uint64_t states = 0;
  bool budget_hit = false;

  std::uint32_t best = kNoIncumbent;
  std::vector<graph::Edge> best_edges;

  std::vector<graph::Edge> chosen;
  std::vector<double> chosen_radii2;     // radii floor from chosen edges
  std::vector<std::uint32_t> scratch;    // coverage counts

  /// Lower bound on the final interference of any completion: coverage
  /// counts induced by the radii floors. For nodes with no chosen edge the
  /// floor is the shortest still-available incident edge (they must attach
  /// eventually). `first_free` is the index of the next undecided edge.
  [[nodiscard]] std::uint32_t lower_bound(std::size_t first_free) {
    const std::size_t n = points.size();
    std::vector<double> radii2 = chosen_radii2;
    // Floors for isolated nodes from the still-available edges.
    std::vector<double> min_avail(n, std::numeric_limits<double>::infinity());
    for (std::size_t j = first_free; j < edges.size(); ++j) {
      min_avail[edges[j].u] = std::min(min_avail[edges[j].u], edge_d2[j]);
      min_avail[edges[j].v] = std::min(min_avail[edges[j].v], edge_d2[j]);
    }
    for (NodeId v = 0; v < n; ++v) {
      // RIM_LINT_ALLOW(float-equality): radius 0.0 is the exact "isolated
      // node" state assigned above, not an arithmetic result.
      if (radii2[v] == 0.0 && std::isfinite(min_avail[v])) {
        radii2[v] = min_avail[v];
      }
    }
    std::fill(scratch.begin(), scratch.end(), 0u);
    std::uint32_t max_i = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (radii2[u] <= 0.0) continue;
      for (NodeId v = 0; v < n; ++v) {
        if (v != u && geom::dist2(points[u], points[v]) <= radii2[u]) {
          max_i = std::max(max_i, ++scratch[v]);
        }
      }
    }
    return max_i;
  }

  /// True iff the chosen forest plus all edges from `first_free` on can
  /// still connect the graph.
  [[nodiscard]] bool connectable(std::size_t first_free) const {
    graph::UnionFind uf(points.size());
    for (graph::Edge e : chosen) uf.unite(e.u, e.v);
    for (std::size_t j = first_free; j < edges.size(); ++j) {
      uf.unite(edges[j].u, edges[j].v);
    }
    return uf.component_count() == 1;
  }

  void dfs(std::size_t index, graph::UnionFind uf) {
    if (budget_hit) return;
    if (++states > max_states) {
      budget_hit = true;
      return;
    }
    if (chosen.size() == points.size() - 1) {
      // Complete tree: its exact interference is the lower bound with all
      // radii fixed (no isolated nodes remain).
      const std::uint32_t value = lower_bound(edges.size());
      if (value < best) {
        best = value;
        best_edges = chosen;
      }
      return;
    }
    if (index >= edges.size()) return;
    if (!connectable(index)) return;
    if (best != kNoIncumbent && lower_bound(index) >= best) return;

    const graph::Edge e = edges[index];
    // Branch 1: include e (if it joins two fragments).
    if (uf.find(e.u) != uf.find(e.v)) {
      graph::UnionFind uf_inc = uf;
      uf_inc.unite(e.u, e.v);
      const double old_u = chosen_radii2[e.u];
      const double old_v = chosen_radii2[e.v];
      chosen.push_back(e);
      chosen_radii2[e.u] = std::max(old_u, edge_d2[index]);
      chosen_radii2[e.v] = std::max(old_v, edge_d2[index]);
      dfs(index + 1, std::move(uf_inc));
      chosen.pop_back();
      chosen_radii2[e.u] = old_u;
      chosen_radii2[e.v] = old_v;
    }
    // Branch 2: exclude e.
    dfs(index + 1, std::move(uf));
  }
};

}  // namespace

std::optional<BranchBoundResult> exact_minimum_interference_tree_bb(
    std::span<const geom::Vec2> points, const graph::Graph& udg,
    std::uint64_t max_states, std::uint32_t initial_upper) {
  const std::size_t n = points.size();
  assert(n == udg.node_count());
  if (n < 2 || !graph::is_connected(udg)) return std::nullopt;

  BbContext ctx;
  ctx.points = points;
  ctx.max_states = max_states;
  ctx.edges.assign(udg.edges().begin(), udg.edges().end());
  std::sort(ctx.edges.begin(), ctx.edges.end(), [&](graph::Edge a, graph::Edge b) {
    const double da = geom::dist2(points[a.u], points[a.v]);
    const double db = geom::dist2(points[b.u], points[b.v]);
    return da < db || (da == db && a < b);
  });
  ctx.edge_d2.reserve(ctx.edges.size());
  for (graph::Edge e : ctx.edges) {
    ctx.edge_d2.push_back(geom::dist2(points[e.u], points[e.v]));
  }
  ctx.chosen_radii2.assign(n, 0.0);
  ctx.scratch.assign(n, 0u);
  ctx.best = initial_upper;

  ctx.dfs(0, graph::UnionFind(n));

  BranchBoundResult result;
  result.states_visited = ctx.states;
  result.proven = !ctx.budget_hit;
  if (ctx.best_edges.empty()) {
    // No tree beat the primed incumbent (or budget ran out before any tree
    // was completed): fall back to an MST so the result is always usable.
    result.tree = graph::euclidean_mst(udg, points);
    result.interference = core::graph_interference(result.tree, points);
    result.proven = result.proven && initial_upper != kNoIncumbent &&
                    initial_upper <= result.interference;
  } else {
    result.tree = graph::Graph(n, ctx.best_edges);
    result.interference = ctx.best;
  }
  return result;
}

}  // namespace rim::highway
