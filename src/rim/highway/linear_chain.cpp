#include "rim/highway/linear_chain.hpp"

namespace rim::highway {

graph::Graph linear_chain(const HighwayInstance& instance, double radius) {
  const auto& xs = instance.positions();
  graph::Graph g(xs.size());
  for (NodeId i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] - xs[i] <= radius) g.add_edge(i, i + 1);
  }
  return g;
}

}  // namespace rim::highway
