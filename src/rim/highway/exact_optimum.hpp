#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file exact_optimum.hpp
/// Exact minimum-interference connectivity-preserving topology for tiny
/// instances, by exhaustive enumeration of labeled spanning trees (Prüfer).
///
/// The paper restricts attention to one tree per component (extra edges can
/// only increase interference, Section 3), so the optimum over trees is the
/// optimum overall. Cayley's n^(n-2) limits this to n <= ~9; the experiment
/// harness uses it as ground truth for the approximation-ratio tables and
/// falls back to Lemma 5.5's lower bound beyond.

namespace rim::highway {

struct ExactResult {
  graph::Graph tree;
  std::uint32_t interference = 0;
  std::uint64_t trees_considered = 0;  ///< trees whose edges all fit the UDG
};

/// Search all spanning trees of the complete graph over \p points whose
/// every edge is present in \p udg. Returns nullopt when the UDG is
/// disconnected (no spanning tree exists) or n < 2. Deterministic: among
/// optima the first in Prüfer enumeration order wins.
/// \p max_n guards against accidental exponential blowups (default 9).
[[nodiscard]] std::optional<ExactResult> exact_minimum_interference_tree(
    std::span<const geom::Vec2> points, const graph::Graph& udg,
    std::size_t max_n = 9);

/// Branch-and-bound exact search, reaching n ≈ 12-14 where Prüfer
/// enumeration is hopeless. DFS over edges (shortest first) with
/// include/exclude branching; pruning uses (a) connectivity feasibility of
/// the remaining edge set and (b) an interference lower bound from the
/// monotone radii: every chosen edge fixes a floor on both endpoint radii,
/// and an untouched node's radius is floored by its shortest still-available
/// incident edge.
struct BranchBoundResult {
  graph::Graph tree;
  std::uint32_t interference = 0;
  std::uint64_t states_visited = 0;
  /// True when the search space was exhausted (result is the true optimum);
  /// false when the state budget ran out (result is the best found so far).
  bool proven = false;
};

/// \p initial_upper primes the incumbent (e.g. with A_apx's value + 1);
/// kInvalidInterference means "no incumbent". Returns nullopt when the UDG
/// is disconnected or n < 2.
inline constexpr std::uint32_t kNoIncumbent = 0xffffffffu;
[[nodiscard]] std::optional<BranchBoundResult>
exact_minimum_interference_tree_bb(std::span<const geom::Vec2> points,
                                   const graph::Graph& udg,
                                   std::uint64_t max_states = 20'000'000,
                                   std::uint32_t initial_upper = kNoIncumbent);

}  // namespace rim::highway
