#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rim/graph/graph.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file interference_1d.hpp
/// Fast receiver-centric interference evaluation specialised to the highway
/// model: with sorted coordinates, the disk D(u, r_u) covers a contiguous
/// index range, so coverage counting reduces to a difference array —
/// O((n + m) log n) instead of the generic evaluator's disk queries. The
/// scan-line algorithm A_exp also needs *incremental* maintenance as radii
/// grow, which Coverage1D provides.

namespace rim::highway {

/// Per-node interference for sorted coordinates \p xs under radii \p radii
/// (Definition 3.1, self excluded). Equivalent to the generic evaluator on
/// the embedded points; cross-checked by tests.
[[nodiscard]] std::vector<std::uint32_t> interference_1d(
    std::span<const double> xs, std::span<const double> radii);

/// Summary for a topology over a highway instance.
[[nodiscard]] std::uint32_t graph_interference_1d(const HighwayInstance& instance,
                                                  const graph::Graph& topology);

/// Incrementally maintained coverage counts for monotonically growing radii.
/// Used by A_exp, which only ever enlarges transmission ranges.
class Coverage1D {
 public:
  explicit Coverage1D(std::span<const double> xs);

  /// Raise node u's radius to \p radius (no-op if not larger). Newly covered
  /// nodes get +1; returns the resulting maximum interference.
  std::uint32_t raise_radius(NodeId u, double radius);

  [[nodiscard]] std::uint32_t max_interference() const { return max_; }
  [[nodiscard]] std::uint32_t interference_of(NodeId v) const { return count_[v]; }
  [[nodiscard]] std::span<const std::uint32_t> per_node() const { return count_; }

 private:
  /// First / one-past-last index covered by D(xs_[u], r).
  [[nodiscard]] std::pair<std::size_t, std::size_t> covered_range(NodeId u,
                                                                  double r) const;

  std::span<const double> xs_;
  std::vector<double> radius_;
  std::vector<std::uint32_t> count_;
  std::uint32_t max_ = 0;
};

}  // namespace rim::highway
