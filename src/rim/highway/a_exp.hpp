#pragma once

#include <cstdint>
#include <vector>

#include "rim/graph/graph.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file a_exp.hpp
/// Algorithm A_exp (Section 5.1): the scan-line construction for the
/// exponential node chain.
///
/// Nodes are processed left to right. The leftmost node starts as the
/// current hub; each subsequent node is connected to the current hub, and
/// whenever such an edge raises the graph interference I(G_exp) the just
/// connected node takes over as hub. Theorem 5.1 shows the result has
/// interference O(sqrt n), matching the Theorem 5.2 lower bound.
///
/// The construction is well defined for any one-dimensional instance whose
/// span is at most the transmission radius (every node can reach every
/// hub); the exponential chain with span <= 1 is the paper's instance.

namespace rim::highway {

struct AExpResult {
  graph::Graph topology;
  std::vector<NodeId> hubs;      ///< hubs in scan order (leftmost first)
  std::uint32_t interference = 0;  ///< I(G_exp) of the final topology
};

/// Run A_exp. Requires instance.span() <= radius (asserted).
[[nodiscard]] AExpResult a_exp(const HighwayInstance& instance, double radius = 1.0);

}  // namespace rim::highway
