#include "rim/highway/a_exp.hpp"

#include <cassert>

#include "rim/highway/interference_1d.hpp"

namespace rim::highway {

AExpResult a_exp(const HighwayInstance& instance, double radius) {
  const auto& xs = instance.positions();
  assert(instance.span() <= radius);
  (void)radius;

  AExpResult result;
  result.topology = graph::Graph(xs.size());
  if (xs.empty()) return result;
  result.hubs.push_back(0);
  if (xs.size() == 1) return result;

  Coverage1D coverage(xs);
  NodeId hub = 0;
  for (NodeId v = 1; v < xs.size(); ++v) {
    const std::uint32_t before = coverage.max_interference();
    result.topology.add_edge(hub, v);
    const double d = xs[v] - xs[hub];
    // Both endpoints enlarge their range to reach each other; the hub only
    // if v is farther than its current farthest neighbor.
    coverage.raise_radius(hub, d);
    const std::uint32_t after = coverage.raise_radius(v, d);
    if (after > before) {
      hub = v;
      result.hubs.push_back(v);
    }
  }
  result.interference = coverage.max_interference();
  return result;
}

}  // namespace rim::highway
