#pragma once

#include <cstddef>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file highway_instance.hpp
/// The highway model (paper Section 5): nodes restricted to one dimension.
///
/// A HighwayInstance stores the sorted coordinates; node ids are positions
/// in sorted order (node 0 is leftmost), which is the indexing every
/// Section 5 algorithm uses. Conversion to a PointSet (y == 0) connects the
/// 1-D algorithms with the general 2-D machinery.

namespace rim::highway {

class HighwayInstance {
 public:
  HighwayInstance() = default;

  /// Build from arbitrary coordinates (sorted internally).
  static HighwayInstance from_positions(std::vector<double> xs);

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] const std::vector<double>& positions() const { return xs_; }
  [[nodiscard]] double position(NodeId i) const { return xs_[i]; }

  /// Total extent (0 for fewer than 2 nodes).
  [[nodiscard]] double span() const {
    return xs_.empty() ? 0.0 : xs_.back() - xs_.front();
  }

  /// Embed on the x-axis for the 2-D machinery.
  [[nodiscard]] geom::PointSet to_points() const;

  /// UDG over this instance (edges between nodes within \p radius).
  [[nodiscard]] graph::Graph udg(double radius = 1.0) const;

  /// Maximum UDG degree Δ, computed by a sliding window in O(n).
  [[nodiscard]] std::size_t max_degree(double radius = 1.0) const;

  /// True iff the UDG is connected, i.e. every consecutive gap <= radius.
  [[nodiscard]] bool udg_connected(double radius = 1.0) const;

 private:
  std::vector<double> xs_;  // sorted ascending
};

/// The exponential node chain of Section 5.1: consecutive gaps 2^0, 2^1,
/// ..., 2^(n-2), normalised so the whole chain spans exactly \p span
/// (default 1, the paper's "all nodes within distance one" assumption, which
/// makes Δ = n - 1). Requires 2 <= n <= 1024 (beyond that the gap ratios
/// exceed double range).
[[nodiscard]] HighwayInstance exponential_chain(std::size_t n, double span = 1.0);

}  // namespace rim::highway
