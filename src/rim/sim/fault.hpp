#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"

/// \file fault.hpp
/// Deterministic, seeded fault injection for the batch pipeline.
///
/// A FaultPlan is a pure function of (seed, batches, rate): a sparse
/// schedule of FaultEvents, each striking one batch of a replay. Two fault
/// families exist:
///
///  - engine faults, delivered through core::BatchHooks on the real
///    apply_batch call: kCrashMidBatch aborts the structural pass at a
///    mutation index (the pipeline invalidates its cache, so the surviving
///    prefix stays queryable), and kPoisonDiskTask / kPoisonRecount
///    silently drop one wave task, deliberately corrupting the
///    interference cache — the InvariantAuditor's reason to exist.
///  - trace faults, applied to a copy of the batch before it reaches the
///    engine: kDropMutation, kDuplicateMutation, kReorderMutations. These
///    produce a *different but valid* mutation sequence (adversarial input,
///    possibly with out-of-range ids that apply() must skip safely).
///
/// apply_batch_with_faults is the one recovery kernel shared by
/// WorkloadDriver and sim::run_trace: snapshot, apply under injection, and
/// when an engine fault fired, restore + replay clean — after which the end
/// state is bit-identical to the uninjected run (the crash-restore-replay
/// equivalence that tests/fault_test.cpp checks exhaustively).

namespace rim::parallel {
class ThreadPool;
}

namespace rim::sim {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrashMidBatch,      ///< abort the structural pass at `index`
  kPoisonDiskTask,     ///< silently skip coalesced disk task `index`
  kPoisonRecount,      ///< silently skip recount task `index`
  kDropMutation,       ///< delete batch[index] before applying
  kDuplicateMutation,  ///< apply batch[index] twice
  kReorderMutations,   ///< swap batch[index] and batch[index+1]
  // Speculative-execution faults (Execution::kSpeculative only; appended so
  // the 1..6 draw in FaultPlan::generate keeps producing the same seeded
  // streams — these two are reached via explicit events or from_json).
  kPoisonSpecTask,      ///< veto speculative task `index` on every attempt
  kSpecValidationFail,  ///< fail task `index`'s validation once (transient)
};

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] bool fault_kind_from_string(const std::string& name,
                                          FaultKind& kind);

/// True for faults delivered through BatchHooks (crash/poison); false for
/// faults that rewrite the batch before application.
[[nodiscard]] constexpr bool is_engine_fault(FaultKind kind) {
  return kind == FaultKind::kCrashMidBatch ||
         kind == FaultKind::kPoisonDiskTask ||
         kind == FaultKind::kPoisonRecount ||
         kind == FaultKind::kPoisonSpecTask ||
         kind == FaultKind::kSpecValidationFail;
}

struct FaultEvent {
  std::size_t batch = 0;  ///< which batch of the replay the fault strikes
  FaultKind kind = FaultKind::kNone;
  /// Mutation/task ordinal the fault targets. Crash and trace faults wrap
  /// it modulo the batch size, so they always fire; poison faults use it
  /// raw (a poison aimed past the task list fizzles — still deterministic).
  std::size_t index = 0;

  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] static bool from_json(const io::Json& json, FaultEvent& out,
                                      std::string& error);
};

/// Seeded sparse fault schedule over a replay of `batches` batches.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Pure function of the arguments: roughly rate * batches events, at most
  /// one per batch, kinds and indices drawn from the seeded stream.
  [[nodiscard]] static FaultPlan generate(std::uint64_t seed,
                                          std::size_t batches, double rate);

  void add(FaultEvent event) { events_.push_back(event); }

  /// The event striking \p batch, or nullptr.
  [[nodiscard]] const FaultEvent* find(std::size_t batch) const;

  [[nodiscard]] std::span<const FaultEvent> events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] static bool from_json(const io::Json& json, FaultPlan& out,
                                      std::string& error);

 private:
  std::vector<FaultEvent> events_;
};

/// BatchHooks implementation delivering one engine FaultEvent into a single
/// apply_batch call. Decisions are pure functions of the (immutable) event,
/// so concurrent wave workers may consult them freely; `fired` is a relaxed
/// atomic flag. This is the reference implementation of the §8 lock-free
/// hook contract (core::BatchHooks): no mutex, no RIM_GUARDED_BY state —
/// only immutable members plus one atomic.
class FaultInjector final : public core::BatchHooks {
 public:
  /// \p batch_size wraps a crash index so it always lands inside the batch.
  FaultInjector(const FaultEvent& event, std::size_t batch_size);

  bool before_mutation(std::size_t index) override;
  bool before_disk_task(std::size_t wave, std::size_t task) override;
  bool before_recount(std::size_t index) override;
  /// kPoisonSpecTask: veto the task on every attempt (skips survive replay
  /// rounds and the serial tail, so the corruption sticks — auditor fodder).
  bool before_speculative_task(std::size_t task) override;
  /// kSpecValidationFail: fail exactly once (compare-exchange on `fired_`),
  /// so the executor rolls the task back, requeues it, and the retry
  /// commits — the end state self-heals without snapshot recovery.
  bool after_speculative_task(std::size_t task) override;

  /// Whether the fault actually struck (a poison aimed past the task list
  /// never fires; no recovery is needed then).
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  FaultEvent event_;
  std::size_t crash_index_ = 0;
  std::atomic<bool> fired_{false};
};

/// Rewrite a batch per a trace fault (drop/duplicate/reorder). Engine
/// faults and empty batches return the input unchanged.
[[nodiscard]] std::vector<core::Mutation> apply_trace_faults(
    std::vector<core::Mutation> batch, const FaultEvent& event);

/// What apply_batch_with_faults did.
struct FaultedBatchOutcome {
  core::BatchResult result;
  bool fault_fired = false;  ///< an engine fault struck this batch
  bool restored = false;     ///< snapshot-restore-replay recovery ran
};

/// Apply \p batch to \p scenario under an optional fault event. Trace
/// faults rewrite a copy of the batch; engine faults run through
/// FaultInjector with, when \p recover is set, snapshot-before /
/// restore-and-replay-after recovery (the end state is then bit-identical
/// to the uninjected application). With \p recover false, engine faults
/// leave the crash or corruption in place for the auditor to find.
FaultedBatchOutcome apply_batch_with_faults(core::Scenario& scenario,
                                            std::span<const core::Mutation> batch,
                                            const FaultEvent* event,
                                            parallel::ThreadPool* pool,
                                            bool recover);

}  // namespace rim::sim
