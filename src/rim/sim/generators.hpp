#pragma once

#include <cstddef>
#include <cstdint>

#include "rim/geom/vec2.hpp"
#include "rim/highway/highway_instance.hpp"

/// \file generators.hpp
/// Random deployment generators. Every generator is a pure function of its
/// parameters plus a 64-bit seed, so experiment tables are reproducible.

namespace rim::sim {

/// n nodes i.i.d. uniform in the square [0, side] x [0, side].
[[nodiscard]] geom::PointSet uniform_square(std::size_t n, double side,
                                            std::uint64_t seed);

/// n nodes in \p clusters Gaussian clusters: centers uniform in the square,
/// points N(center, stddev^2 I). Models the inhomogeneous deployments where
/// sender-centric interference misbehaves.
[[nodiscard]] geom::PointSet gaussian_clusters(std::size_t n, std::size_t clusters,
                                               double side, double stddev,
                                               std::uint64_t seed);

/// Uniform highway: n nodes i.i.d. uniform on [0, length].
[[nodiscard]] highway::HighwayInstance uniform_highway(std::size_t n, double length,
                                                       std::uint64_t seed);

/// Perturbed exponential chain: the Section 5.1 instance with every gap
/// multiplied by a uniform factor in [1-jitter, 1+jitter], then renormalised
/// to the given span. jitter in [0, 1).
[[nodiscard]] highway::HighwayInstance perturbed_exponential_chain(
    std::size_t n, double jitter, std::uint64_t seed, double span = 1.0);

/// A highway made of \p blocks dense blocks (each `per_block` nodes uniform
/// in a sub-interval of width `block_width`) whose left edges are `stride`
/// apart. Produces instances with large Δ but small γ when blocks are
/// uniform — exercising A_apx's linear branch at scale.
[[nodiscard]] highway::HighwayInstance blocked_highway(std::size_t blocks,
                                                       std::size_t per_block,
                                                       double block_width,
                                                       double stride,
                                                       std::uint64_t seed);

}  // namespace rim::sim
