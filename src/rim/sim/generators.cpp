#include "rim/sim/generators.hpp"

#include <cassert>
#include <vector>

#include "rim/sim/rng.hpp"

namespace rim::sim {

geom::PointSet uniform_square(std::size_t n, double side, std::uint64_t seed) {
  Rng rng(seed);
  geom::PointSet points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  return points;
}

geom::PointSet gaussian_clusters(std::size_t n, std::size_t clusters, double side,
                                 double stddev, std::uint64_t seed) {
  assert(clusters >= 1);
  Rng rng(seed);
  std::vector<geom::Vec2> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  geom::PointSet points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 center = centers[rng.next_below(clusters)];
    points.push_back({center.x + stddev * rng.next_gaussian(),
                      center.y + stddev * rng.next_gaussian()});
  }
  return points;
}

highway::HighwayInstance uniform_highway(std::size_t n, double length,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(0.0, length));
  return highway::HighwayInstance::from_positions(std::move(xs));
}

highway::HighwayInstance perturbed_exponential_chain(std::size_t n, double jitter,
                                                     std::uint64_t seed, double span) {
  assert(n >= 2 && jitter >= 0.0 && jitter < 1.0);
  Rng rng(seed);
  std::vector<double> xs(n, 0.0);
  double gap = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    xs[i] = xs[i - 1] + gap * rng.uniform(1.0 - jitter, 1.0 + jitter);
    gap *= 2.0;
  }
  const double scale = span / xs.back();
  for (double& x : xs) x *= scale;
  return highway::HighwayInstance::from_positions(std::move(xs));
}

highway::HighwayInstance blocked_highway(std::size_t blocks, std::size_t per_block,
                                         double block_width, double stride,
                                         std::uint64_t seed) {
  assert(stride >= block_width);
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(blocks * per_block);
  for (std::size_t b = 0; b < blocks; ++b) {
    const double left = static_cast<double>(b) * stride;
    for (std::size_t i = 0; i < per_block; ++i) {
      xs.push_back(left + rng.uniform(0.0, block_width));
    }
  }
  return highway::HighwayInstance::from_positions(std::move(xs));
}

}  // namespace rim::sim
