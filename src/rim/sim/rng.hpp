#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic PRNG for experiment reproducibility.
///
/// A self-contained xoshiro256** implementation seeded via SplitMix64 —
/// unlike std::mt19937 + std::uniform_real_distribution, its output is
/// specified bit-for-bit, so tables regenerate identically across standard
/// libraries and platforms.

namespace rim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) (bound > 0), bias-free.
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal (Box–Muller; one value per call, spare cached).
  double next_gaussian();

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rim::sim
