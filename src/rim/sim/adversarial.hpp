#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/graph/graph.hpp"

/// \file adversarial.hpp
/// The paper's hand-crafted instances: the Figure 1 cluster-plus-outlier
/// network and the Figure 3 two-exponential-chains construction behind
/// Theorem 4.1.

namespace rim::sim {

/// Figure 1: n-1 nodes roughly homogeneously placed in a small cluster
/// (uniform in a square of side \p cluster_side) plus one outlier at
/// distance just under the unit transmission radius from the cluster's
/// right edge. Any connectivity-preserving topology must bridge to the
/// outlier with a link covering the whole cluster — which explodes the
/// sender-centric measure but adds only O(1) receiver-centric interference.
/// The outlier is the last node id.
[[nodiscard]] geom::PointSet figure1_instance(std::size_t n, std::uint64_t seed,
                                              double cluster_side = 0.05);

/// The Theorem 4.1 instance (Figures 3-5).
struct TwoChainInstance {
  geom::PointSet points;
  std::vector<NodeId> h;  ///< horizontal exponential chain, left to right
  std::vector<NodeId> v;  ///< diagonal chain; v[i] pairs with h[i] (i >= 1)
  std::vector<NodeId> t;  ///< helper nodes; t[i] between v[i-1] and v[i] (i >= 2)

  /// The Figure-5-style low-interference spanning tree: h_i hangs off v_i,
  /// the v-chain is threaded through the helper nodes t_i, and h_0 attaches
  /// to h_1. Constant interference regardless of size (asserted by tests).
  [[nodiscard]] graph::Graph low_interference_tree() const;
};

/// Build the instance with \p m >= 3 horizontal nodes (total n = 3m - 3
/// nodes), scaled so the whole point set has diameter <= 1 (complete UDG).
///
/// Geometry per Section 4: gap h_i -> h_{i+1} is (scaled) 2^i; v_i sits
/// above h_i at distance d_i slightly larger than 2^{i-1}; t_i lies on the
/// segment v_{i-1} v_i close to v_{i-1}, far enough from h_i that
/// |h_i t_i| > |h_i v_i|. Under these constraints the Nearest Neighbor
/// Forest wires the horizontal chain linearly, so every h_i covers all
/// nodes to its left and the leftmost node suffers interference >= m - 2.
[[nodiscard]] TwoChainInstance two_exponential_chains(std::size_t m);

}  // namespace rim::sim
