#pragma once

#include <cstdint>
#include <vector>

#include "rim/geom/vec2.hpp"
#include "rim/topology/topology_algorithm.hpp"

/// \file churn.hpp
/// Dynamic churn traces: nodes arrive and depart over time, the topology is
/// recomputed after every event, and both interference measures are
/// recorded. This turns the paper's static robustness argument (Section 1,
/// Figure 1) into a longitudinal experiment: the receiver-centric measure
/// moves smoothly under churn while the sender-centric one spikes.

namespace rim::sim {

struct ChurnConfig {
  std::size_t initial_nodes = 50;
  std::size_t events = 100;
  double add_probability = 0.5;  ///< P(arrival); otherwise a departure
  double side = 2.0;             ///< deployment square side
  std::uint64_t seed = 1;
  double radius = 1.0;           ///< UDG radius
  /// Fraction of arrivals placed as Figure-1-style outliers: just inside
  /// UDG reach to the deployment's right edge, forcing a bridge link.
  double outlier_probability = 0.0;
};

struct ChurnStep {
  bool added = false;            ///< arrival (true) or departure
  std::size_t node_count = 0;    ///< network size after the event
  std::uint32_t receiver_max = 0;
  std::uint32_t sender_max = 0;
};

struct ChurnTrace {
  std::vector<ChurnStep> steps;

  /// Largest one-event increase of the respective measure.
  [[nodiscard]] std::uint32_t max_receiver_jump() const;
  [[nodiscard]] std::uint32_t max_sender_jump() const;
};

/// Run a churn trace, recomputing the topology with \p builder (any entry
/// of the registry) after every event. Departures never empty the network
/// below 2 nodes.
[[nodiscard]] ChurnTrace run_churn(const ChurnConfig& config,
                                   const topology::Builder& builder);

}  // namespace rim::sim
