#include "rim/sim/trace.hpp"

#include <algorithm>
#include <utility>

#include "rim/core/audit.hpp"
#include "rim/core/snapshot.hpp"
#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/rng.hpp"

namespace rim::sim {

namespace {

const char* mutation_kind_name(core::Mutation::Kind kind) {
  switch (kind) {
    case core::Mutation::Kind::kAddNode: return "add_node";
    case core::Mutation::Kind::kRemoveNode: return "remove_node";
    case core::Mutation::Kind::kAddEdge: return "add_edge";
    case core::Mutation::Kind::kRemoveEdge: return "remove_edge";
    case core::Mutation::Kind::kMoveNode: return "move_node";
  }
  return "unknown";
}

bool mutation_kind_from_name(const std::string& name,
                             core::Mutation::Kind& kind) {
  for (const core::Mutation::Kind k :
       {core::Mutation::Kind::kAddNode, core::Mutation::Kind::kRemoveNode,
        core::Mutation::Kind::kAddEdge, core::Mutation::Kind::kRemoveEdge,
        core::Mutation::Kind::kMoveNode}) {
    if (name == mutation_kind_name(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

}  // namespace

io::Json mutation_to_json(const core::Mutation& mutation) {
  io::JsonObject o;
  o["kind"] = io::Json(mutation_kind_name(mutation.kind));
  o["u"] = io::Json(mutation.u);
  o["v"] = io::Json(mutation.v);
  o["pos_bits"] = io::Json(core::double_to_hex_bits(mutation.position.x) +
                           core::double_to_hex_bits(mutation.position.y));
  return io::Json(std::move(o));
}

bool mutation_from_json(const io::Json& json, core::Mutation& out,
                        std::string& error) {
  out = core::Mutation{};
  const io::Json* kind = json.find("kind");
  const io::Json* u = json.find("u");
  const io::Json* v = json.find("v");
  const io::Json* pos = json.find("pos_bits");
  if (kind == nullptr || kind->as_string() == nullptr || u == nullptr ||
      !u->is_number() || v == nullptr || !v->is_number() || pos == nullptr ||
      pos->as_string() == nullptr) {
    error = "mutation: missing kind/u/v/pos_bits";
    return false;
  }
  if (!mutation_kind_from_name(*kind->as_string(), out.kind)) {
    error = "mutation: unknown kind '" + *kind->as_string() + "'";
    return false;
  }
  const std::string& bits = *pos->as_string();
  if (bits.size() != 32 ||
      !core::double_from_hex_bits(bits.substr(0, 16), out.position.x) ||
      !core::double_from_hex_bits(bits.substr(16, 16), out.position.y)) {
    error = "mutation: malformed pos_bits";
    return false;
  }
  out.u = static_cast<NodeId>(u->as_number());
  out.v = static_cast<NodeId>(v->as_number());
  return true;
}

io::Json FuzzTrace::to_json() const {
  io::JsonObject o;
  o["format"] = io::Json("rim-fuzz-trace");
  o["version"] = io::Json(1);
  o["init"] = io::Json(init);
  {
    io::JsonObject cfg;
    cfg["seed"] = io::Json(config.seed);
    cfg["initial_nodes"] = io::Json(config.initial_nodes);
    cfg["batch_size"] = io::Json(config.batch_size);
    cfg["side_bits"] = io::Json(core::double_to_hex_bits(config.side));
    o["config"] = io::Json(std::move(cfg));
  }
  o["recover"] = io::Json(recover);
  o["audit_every"] = io::Json(audit_every);
  o["robustness_probes"] = io::Json(robustness_probes);
  {
    io::JsonArray epoch_rows;
    epoch_rows.reserve(epochs.size());
    for (const std::vector<core::Mutation>& epoch : epochs) {
      io::JsonArray row;
      row.reserve(epoch.size());
      for (const core::Mutation& m : epoch) row.push_back(mutation_to_json(m));
      epoch_rows.emplace_back(std::move(row));
    }
    o["epochs"] = io::Json(std::move(epoch_rows));
  }
  o["faults"] = faults.to_json();
  o["violation"] = io::Json(violation);
  return io::Json(std::move(o));
}

bool FuzzTrace::from_json(const io::Json& json, FuzzTrace& out,
                          std::string& error) {
  out = FuzzTrace{};
  const io::Json* format = json.find("format");
  if (format == nullptr || format->as_string() == nullptr ||
      *format->as_string() != "rim-fuzz-trace") {
    error = "not a rim-fuzz-trace document";
    return false;
  }
  const io::Json* cfg = json.find("config");
  if (cfg == nullptr || !cfg->is_object()) {
    error = "fuzz trace: missing config";
    return false;
  }
  const io::Json* seed = cfg->find("seed");
  const io::Json* initial = cfg->find("initial_nodes");
  const io::Json* batch_size = cfg->find("batch_size");
  const io::Json* side = cfg->find("side_bits");
  if (seed == nullptr || !seed->is_number() || initial == nullptr ||
      !initial->is_number() || batch_size == nullptr ||
      !batch_size->is_number() || side == nullptr ||
      side->as_string() == nullptr ||
      !core::double_from_hex_bits(*side->as_string(), out.config.side)) {
    error = "fuzz trace: malformed config";
    return false;
  }
  out.config.seed = static_cast<std::uint64_t>(seed->as_number());
  out.config.initial_nodes = static_cast<std::size_t>(initial->as_number());
  out.config.batch_size = static_cast<std::size_t>(batch_size->as_number());
  const io::Json* init = json.find("init");
  if (init != nullptr && init->as_string() != nullptr) {
    out.init = *init->as_string();
  }
  if (out.init != "tenant" && out.init != "pairs") {
    error = "fuzz trace: unknown init '" + out.init + "'";
    return false;
  }
  const io::Json* recover = json.find("recover");
  if (recover != nullptr && recover->is_bool()) {
    out.recover = recover->as_bool();
  }
  const io::Json* audit_every = json.find("audit_every");
  if (audit_every != nullptr && audit_every->is_number()) {
    out.audit_every = static_cast<std::size_t>(audit_every->as_number());
  }
  const io::Json* probes = json.find("robustness_probes");
  if (probes != nullptr && probes->is_number()) {
    out.robustness_probes = static_cast<std::size_t>(probes->as_number());
  }
  const io::Json* epochs = json.find("epochs");
  if (epochs == nullptr || !epochs->is_array()) {
    error = "fuzz trace: missing epochs";
    return false;
  }
  out.epochs.reserve(epochs->as_array()->size());
  for (const io::Json& row : *epochs->as_array()) {
    if (!row.is_array()) {
      error = "fuzz trace: malformed epoch";
      return false;
    }
    std::vector<core::Mutation> epoch;
    epoch.reserve(row.as_array()->size());
    for (const io::Json& entry : *row.as_array()) {
      core::Mutation mutation;
      if (!mutation_from_json(entry, mutation, error)) return false;
      epoch.push_back(mutation);
    }
    out.epochs.push_back(std::move(epoch));
  }
  const io::Json* faults = json.find("faults");
  if (faults != nullptr && !faults->is_null()) {
    if (!FaultPlan::from_json(*faults, out.faults, error)) return false;
  }
  const io::Json* violation = json.find("violation");
  if (violation != nullptr && violation->as_string() != nullptr) {
    out.violation = *violation->as_string();
  }
  return true;
}

io::Json FuzzOutcome::to_json() const {
  io::JsonObject o;
  o["ok"] = io::Json(ok);
  o["failed_epoch"] = io::Json(failed_epoch);
  o["violation"] = io::Json(violation);
  o["faults_fired"] = io::Json(faults_fired);
  o["restores"] = io::Json(restores);
  return io::Json(std::move(o));
}

FuzzTrace make_fuzz_trace(const WorkloadConfig& config, std::size_t steps,
                          double fault_rate, std::uint64_t fault_seed) {
  FuzzTrace trace;
  trace.config = config;
  const std::size_t batch_size = std::max<std::size_t>(config.batch_size, 1);
  const std::size_t epochs = (steps + batch_size - 1) / batch_size;
  Rng rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  std::size_t nodes = std::max<std::size_t>(config.initial_nodes, 2);
  trace.epochs.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<core::Mutation> batch =
        make_churn_batch(rng, nodes, config);
    // Track the node count the way serial application would: every listed
    // removal targets a then-valid id and every arrival lands, so the
    // predicted count matches the replayed scenario exactly (under faults
    // it may drift, which is the adversarial point — apply() skips ids
    // that have become invalid).
    for (const core::Mutation& m : batch) {
      if (m.kind == core::Mutation::Kind::kAddNode) {
        ++nodes;
      } else if (m.kind == core::Mutation::Kind::kRemoveNode && nodes > 0) {
        --nodes;
      }
    }
    trace.epochs.push_back(std::move(batch));
  }
  trace.faults = FaultPlan::generate(fault_seed, epochs, fault_rate);
  return trace;
}

core::Scenario make_pairs_scenario(const WorkloadConfig& config) {
  const std::size_t n = std::max<std::size_t>(config.initial_nodes, 2);
  geom::PointSet points(n);
  graph::Graph topology(n);
  for (std::size_t i = 0; 2 * i < n; ++i) {
    const double x = 3.0 * static_cast<double>(i);
    points[2 * i] = {x, 0.0};
    if (2 * i + 1 < n) {
      points[2 * i + 1] = {x + 1.0, 0.0};
      topology.add_edge(static_cast<NodeId>(2 * i),
                        static_cast<NodeId>(2 * i + 1));
    }
  }
  return core::Scenario(points, topology, config.eval);
}

FuzzOutcome run_trace(const FuzzTrace& trace) {
  FuzzOutcome outcome;
  core::Scenario scenario = trace.init == "pairs"
                                ? make_pairs_scenario(trace.config)
                                : make_tenant_scenario(trace.config, 0);
  const core::InvariantAuditor auditor;
  Rng probe_rng(trace.config.seed ^ 0xC0FFEE5EEDF00D42ULL);
  parallel::ThreadPool* pool = &parallel::ThreadPool::shared();
  const std::size_t cadence = std::max<std::size_t>(trace.audit_every, 1);
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    // Warm the cache so the batch takes the coalesce/wave path whenever its
    // regions are small enough (a cold cache would force the deferred path,
    // where poison faults have no task to strike).
    (void)scenario.interference();
    const FaultEvent* event = trace.faults.find(e);
    const FaultedBatchOutcome applied = apply_batch_with_faults(
        scenario, trace.epochs[e], event, pool, trace.recover);
    if (applied.fault_fired) ++outcome.faults_fired;
    if (applied.restored) ++outcome.restores;
    const bool last = e + 1 == trace.epochs.size();
    if ((e + 1) % cadence != 0 && !last) continue;
    core::AuditReport report = auditor.audit(scenario);
    if (report.ok() && trace.robustness_probes > 0) {
      std::vector<geom::Vec2> probes(trace.robustness_probes);
      for (geom::Vec2& p : probes) {
        p = {probe_rng.uniform(0.0, trace.config.side),
             probe_rng.uniform(0.0, trace.config.side)};
      }
      const core::AuditReport robustness =
          auditor.audit_robustness(scenario, probes);
      report.checks += robustness.checks;
      report.violations.insert(report.violations.end(),
                               robustness.violations.begin(),
                               robustness.violations.end());
    }
    if (!report.ok()) {
      outcome.ok = false;
      outcome.failed_epoch = e;
      outcome.violation = report.violations.front();
      return outcome;
    }
  }
  return outcome;
}

FuzzTrace minimize_trace(FuzzTrace trace, std::size_t max_runs) {
  std::size_t runs = 0;
  const auto fails = [&](const FuzzTrace& candidate,
                         std::string& violation) {
    if (runs >= max_runs) return false;
    ++runs;
    const FuzzOutcome outcome = run_trace(candidate);
    if (!outcome.ok) violation = outcome.violation;
    return !outcome.ok;
  };

  std::string violation;
  if (!fails(trace, violation)) return trace;  // not failing: nothing to do
  trace.violation = violation;

  // Pass 1: drop whole epochs, last to first (later epochs usually only
  // pad; faults on removed epochs go with them, later ones shift down).
  for (std::size_t e = trace.epochs.size(); e-- > 0;) {
    if (runs >= max_runs) break;
    FuzzTrace candidate = trace;
    candidate.epochs.erase(candidate.epochs.begin() +
                           static_cast<std::ptrdiff_t>(e));
    FaultPlan remapped;
    for (const FaultEvent& event : candidate.faults.events()) {
      if (event.batch == e) continue;
      FaultEvent shifted = event;
      if (shifted.batch > e) --shifted.batch;
      remapped.add(shifted);
    }
    candidate.faults = std::move(remapped);
    if (fails(candidate, violation)) {
      trace = std::move(candidate);
      trace.violation = violation;
    }
  }

  // Pass 2: drop single mutations.
  for (std::size_t e = trace.epochs.size(); e-- > 0;) {
    for (std::size_t m = trace.epochs[e].size(); m-- > 0;) {
      if (runs >= max_runs) return trace;
      FuzzTrace candidate = trace;
      candidate.epochs[e].erase(candidate.epochs[e].begin() +
                                static_cast<std::ptrdiff_t>(m));
      if (fails(candidate, violation)) {
        trace = std::move(candidate);
        trace.violation = violation;
      }
    }
  }
  return trace;
}

}  // namespace rim::sim
