#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/sim/fault.hpp"
#include "rim/sim/workload.hpp"

/// \file trace.hpp
/// Replayable fuzz traces: randomized mutation/fault schedules with
/// per-epoch invariant auditing, JSON round-tripping, and minimization.
///
/// A FuzzTrace is fully concrete — every mutation (bit-exact positions) and
/// every fault event is materialised, so a trace written by rim_fuzz on one
/// machine replays identically on another: run_trace() rebuilds tenant 0's
/// deterministic initial scenario from the embedded config, applies each
/// epoch through the fault-recovery kernel, and audits the engine's
/// receiver-centric invariants (core::InvariantAuditor) after every
/// audit_every epochs plus Definition 3.2 robustness probes. The first
/// violation makes the trace "failing"; minimize_trace() then shrinks it
/// greedily (whole epochs, then single mutations) while the failure
/// reproduces, which is what rim_fuzz emits as its artifact.

namespace rim::sim {

/// Mutation <-> JSON (kind as string, coordinates as hex bit patterns so
/// replays are bit-exact).
[[nodiscard]] io::Json mutation_to_json(const core::Mutation& mutation);
[[nodiscard]] bool mutation_from_json(const io::Json& json,
                                      core::Mutation& out, std::string& error);

struct FuzzTrace {
  /// Shape of the deterministic initial scenario (make_tenant_scenario,
  /// tenant 0) and of the EvalOptions; batches/batch_size are ignored —
  /// the epochs below are concrete.
  WorkloadConfig config;
  /// Initial topology: "tenant" (make_tenant_scenario: ring + chords over
  /// uniform points — long edges, so most batches defer to full evaluation)
  /// or "pairs" (isolated unit-distance dumbbells — local disks, so batches
  /// run the coalesce/wave pipeline and poison faults can actually land).
  std::string init = "tenant";
  std::vector<std::vector<core::Mutation>> epochs;
  FaultPlan faults;  ///< FaultEvent::batch indexes into epochs
  /// Crash/poison faults are recovered (snapshot-restore-replay) when set;
  /// clearing it leaves corruption in place — the auditor must then fail,
  /// which is how detection itself is tested.
  bool recover = true;
  std::size_t audit_every = 1;        ///< audit after every k-th epoch
  std::size_t robustness_probes = 2;  ///< Definition 3.2 probes per audit
  std::string violation;              ///< first violation of a failing run

  [[nodiscard]] io::Json to_json() const;
  [[nodiscard]] static bool from_json(const io::Json& json, FuzzTrace& out,
                                      std::string& error);
};

struct FuzzOutcome {
  bool ok = true;
  std::size_t failed_epoch = 0;  ///< epoch whose audit first failed
  std::string violation;
  std::size_t faults_fired = 0;
  std::size_t restores = 0;

  [[nodiscard]] io::Json to_json() const;
};

/// Materialise a randomized trace: `steps` mutations of seeded churn in
/// config.batch_size-sized epochs, plus a FaultPlan at \p fault_rate.
[[nodiscard]] FuzzTrace make_fuzz_trace(const WorkloadConfig& config,
                                        std::size_t steps, double fault_rate,
                                        std::uint64_t fault_seed);

/// The "pairs" initial scenario: config.initial_nodes nodes as isolated
/// unit-distance dumbbells three units apart (an odd trailing node stays
/// isolated). Every radius is 1 and every I(v) is 1, so mutation deltas
/// stay local — the wave pipeline runs instead of deferring.
[[nodiscard]] core::Scenario make_pairs_scenario(const WorkloadConfig& config);

/// Replay \p trace from scratch and audit. Pure function of the trace.
[[nodiscard]] FuzzOutcome run_trace(const FuzzTrace& trace);

/// Greedy delta-debugging: drop whole epochs (last to first), then single
/// mutations, re-running the trace after each candidate removal and keeping
/// it only if some violation still reproduces. Bounded by \p max_runs
/// replays. Returns the shrunk trace with `violation` refreshed.
[[nodiscard]] FuzzTrace minimize_trace(FuzzTrace trace,
                                       std::size_t max_runs = 256);

}  // namespace rim::sim
