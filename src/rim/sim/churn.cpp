#include "rim/sim/churn.hpp"

#include <algorithm>

#include "rim/core/scenario.hpp"
#include "rim/core/sender_centric.hpp"
#include "rim/graph/udg.hpp"
#include "rim/sim/rng.hpp"

namespace rim::sim {

std::uint32_t ChurnTrace::max_receiver_jump() const {
  std::uint32_t jump = 0;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    if (steps[i].receiver_max > steps[i - 1].receiver_max) {
      jump = std::max(jump, steps[i].receiver_max - steps[i - 1].receiver_max);
    }
  }
  return jump;
}

std::uint32_t ChurnTrace::max_sender_jump() const {
  std::uint32_t jump = 0;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    if (steps[i].sender_max > steps[i - 1].sender_max) {
      jump = std::max(jump, steps[i].sender_max - steps[i - 1].sender_max);
    }
  }
  return jump;
}

ChurnTrace run_churn(const ChurnConfig& config, const topology::Builder& builder) {
  Rng rng(config.seed);
  geom::PointSet points;
  points.reserve(config.initial_nodes + config.events);
  for (std::size_t i = 0; i < config.initial_nodes; ++i) {
    points.push_back({rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)});
  }

  ChurnTrace trace;
  trace.steps.reserve(config.events + 1);
  const auto record = [&](bool added) {
    const graph::Graph udg = graph::build_udg(points, config.radius);
    const graph::Graph topo = builder(points, udg);
    // The builder rewires the whole topology per event, so each step is a
    // fresh one-shot Scenario; workloads that mutate a fixed topology
    // should hold one Scenario across events instead (bench_incremental).
    core::Scenario scenario(points, topo);
    ChurnStep step;
    step.added = added;
    step.node_count = points.size();
    step.receiver_max = scenario.max_interference();
    step.sender_max = core::evaluate_sender_centric(topo, points).max;
    trace.steps.push_back(step);
  };
  record(true);  // initial state

  for (std::size_t event = 0; event < config.events; ++event) {
    const bool add =
        points.size() <= 2 || rng.next_double() < config.add_probability;
    if (add) {
      if (rng.next_double() < config.outlier_probability) {
        points.push_back({config.side + 0.95 * config.radius,
                          rng.uniform(0.0, config.side)});
      } else {
        points.push_back(
            {rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)});
      }
    } else {
      const std::size_t victim = rng.next_below(points.size());
      points.erase(points.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    record(add);
  }
  return trace;
}

}  // namespace rim::sim
