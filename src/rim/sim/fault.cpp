#include "rim/sim/fault.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "rim/core/snapshot.hpp"
#include "rim/sim/rng.hpp"

namespace rim::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrashMidBatch: return "crash_mid_batch";
    case FaultKind::kPoisonDiskTask: return "poison_disk_task";
    case FaultKind::kPoisonRecount: return "poison_recount";
    case FaultKind::kDropMutation: return "drop_mutation";
    case FaultKind::kDuplicateMutation: return "duplicate_mutation";
    case FaultKind::kReorderMutations: return "reorder_mutations";
    case FaultKind::kPoisonSpecTask: return "poison_spec_task";
    case FaultKind::kSpecValidationFail: return "spec_validation_fail";
  }
  return "unknown";
}

bool fault_kind_from_string(const std::string& name, FaultKind& kind) {
  for (const FaultKind k :
       {FaultKind::kNone, FaultKind::kCrashMidBatch,
        FaultKind::kPoisonDiskTask, FaultKind::kPoisonRecount,
        FaultKind::kDropMutation, FaultKind::kDuplicateMutation,
        FaultKind::kReorderMutations, FaultKind::kPoisonSpecTask,
        FaultKind::kSpecValidationFail}) {
    if (name == to_string(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

io::Json FaultEvent::to_json() const {
  io::JsonObject o;
  o["batch"] = io::Json(batch);
  o["kind"] = io::Json(to_string(kind));
  o["index"] = io::Json(index);
  return io::Json(std::move(o));
}

bool FaultEvent::from_json(const io::Json& json, FaultEvent& out,
                           std::string& error) {
  out = FaultEvent{};
  const io::Json* batch = json.find("batch");
  const io::Json* kind = json.find("kind");
  const io::Json* index = json.find("index");
  if (batch == nullptr || !batch->is_number() || kind == nullptr ||
      kind->as_string() == nullptr || index == nullptr ||
      !index->is_number()) {
    error = "fault event: missing batch/kind/index";
    return false;
  }
  if (!fault_kind_from_string(*kind->as_string(), out.kind)) {
    error = "fault event: unknown kind '" + *kind->as_string() + "'";
    return false;
  }
  out.batch = static_cast<std::size_t>(batch->as_number());
  out.index = static_cast<std::size_t>(index->as_number());
  return true;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, std::size_t batches,
                              double rate) {
  FaultPlan plan;
  if (rate <= 0.0) return plan;
  Rng rng(seed);
  for (std::size_t b = 0; b < batches; ++b) {
    if (rng.next_double() >= rate) continue;
    FaultEvent event;
    event.batch = b;
    // 1..6 maps onto the concrete kinds (kNone excluded).
    event.kind = static_cast<FaultKind>(1 + rng.next_below(6));
    // Small raw indices keep poison faults likely to land inside the task
    // list; crash/trace faults wrap at use time regardless.
    event.index = static_cast<std::size_t>(rng.next_below(8));
    plan.add(event);
  }
  return plan;
}

const FaultEvent* FaultPlan::find(std::size_t batch) const {
  for (const FaultEvent& event : events_) {
    if (event.batch == batch) return &event;
  }
  return nullptr;
}

io::Json FaultPlan::to_json() const {
  io::JsonArray rows;
  rows.reserve(events_.size());
  for (const FaultEvent& event : events_) rows.push_back(event.to_json());
  return io::Json(std::move(rows));
}

bool FaultPlan::from_json(const io::Json& json, FaultPlan& out,
                          std::string& error) {
  out = FaultPlan{};
  const io::JsonArray* rows = json.as_array();
  if (rows == nullptr) {
    error = "fault plan: expected an array";
    return false;
  }
  for (const io::Json& row : *rows) {
    FaultEvent event;
    if (!FaultEvent::from_json(row, event, error)) return false;
    out.add(event);
  }
  return true;
}

FaultInjector::FaultInjector(const FaultEvent& event, std::size_t batch_size)
    : event_(event),
      crash_index_(batch_size > 0 ? event.index % batch_size : 0) {}

bool FaultInjector::before_mutation(std::size_t index) {
  if (event_.kind == FaultKind::kCrashMidBatch && index == crash_index_) {
    fired_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultInjector::before_disk_task(std::size_t wave, std::size_t task) {
  (void)wave;
  if (event_.kind == FaultKind::kPoisonDiskTask && task == event_.index) {
    fired_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultInjector::before_recount(std::size_t index) {
  if (event_.kind == FaultKind::kPoisonRecount && index == event_.index) {
    fired_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultInjector::before_speculative_task(std::size_t task) {
  if (event_.kind == FaultKind::kPoisonSpecTask && task == event_.index) {
    fired_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool FaultInjector::after_speculative_task(std::size_t task) {
  if (event_.kind == FaultKind::kSpecValidationFail && task == event_.index) {
    // One-shot by compare-exchange: concurrent workers may race here, but
    // exactly one validation failure is ever delivered, so the rolled-back
    // task's retry commits and the batch self-heals.
    bool expected = false;
    if (fired_.compare_exchange_strong(expected, true,
                                       std::memory_order_relaxed)) {
      return false;
    }
  }
  return true;
}

std::vector<core::Mutation> apply_trace_faults(
    std::vector<core::Mutation> batch, const FaultEvent& event) {
  if (batch.empty()) return batch;
  const std::size_t i = event.index % batch.size();
  switch (event.kind) {
    case FaultKind::kDropMutation:
      batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    case FaultKind::kDuplicateMutation:
      batch.insert(batch.begin() + static_cast<std::ptrdiff_t>(i), batch[i]);
      break;
    case FaultKind::kReorderMutations:
      if (batch.size() >= 2) {
        const std::size_t j = (i + 1) % batch.size();
        std::swap(batch[i], batch[j]);
      }
      break;
    default:
      break;
  }
  return batch;
}

FaultedBatchOutcome apply_batch_with_faults(
    core::Scenario& scenario, std::span<const core::Mutation> batch,
    const FaultEvent* event, parallel::ThreadPool* pool, bool recover) {
  FaultedBatchOutcome outcome;
  if (event == nullptr || event->kind == FaultKind::kNone) {
    outcome.result = scenario.apply_batch(batch, pool);
    return outcome;
  }
  if (!is_engine_fault(event->kind)) {
    const std::vector<core::Mutation> rewritten = apply_trace_faults(
        std::vector<core::Mutation>(batch.begin(), batch.end()), *event);
    outcome.result = scenario.apply_batch(rewritten, pool);
    outcome.fault_fired = true;
    return outcome;
  }
  if (!recover) {
    FaultInjector injector(*event, batch.size());
    outcome.result = scenario.apply_batch(batch, pool, &injector);
    outcome.fault_fired = injector.fired();
    return outcome;
  }
  // Crash-restore-replay: capture state, apply under injection, and when
  // the fault struck, roll back and replay clean. The snapshot restores
  // everything the engine owns, so the replayed end state is bit-identical
  // to an uninjected application of the same batch.
  const core::Snapshot checkpoint = scenario.snapshot();
  FaultInjector injector(*event, batch.size());
  outcome.result = scenario.apply_batch(batch, pool, &injector);
  if (injector.fired()) {
    outcome.fault_fired = true;
    std::string error;
    const bool restored = scenario.restore(checkpoint, &error);
    // The checkpoint came from snapshot() moments ago; failure to restore
    // it would be an engine bug, not an input error.
    assert(restored);
    (void)restored;
    outcome.restored = true;
    outcome.result = scenario.apply_batch(batch, pool);
  }
  return outcome;
}

}  // namespace rim::sim
