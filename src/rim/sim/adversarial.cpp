#include "rim/sim/adversarial.hpp"

#include <cassert>
#include <cmath>

#include "rim/geom/aabb.hpp"
#include "rim/sim/rng.hpp"

namespace rim::sim {

geom::PointSet figure1_instance(std::size_t n, std::uint64_t seed,
                                double cluster_side) {
  assert(n >= 2);
  Rng rng(seed);
  geom::PointSet points;
  points.reserve(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    points.push_back(
        {rng.uniform(0.0, cluster_side), rng.uniform(0.0, cluster_side)});
  }
  // The outlier: reachable (distance < 1) from the cluster's right edge but
  // far relative to the cluster diameter.
  points.push_back({cluster_side + 0.95, cluster_side * 0.5});
  return points;
}

TwoChainInstance two_exponential_chains(std::size_t m) {
  assert(m >= 3 && m <= 512);
  // Raw (unscaled) construction; eps keeps the strict inequalities of the
  // paper's figure and f places t_i on the segment v_{i-1}v_i near v_{i-1}
  // (f = 0.1 keeps |h_i t_i| > |h_i v_i|, verified below).
  constexpr double kEps = 1e-3;
  constexpr double kF = 0.1;

  TwoChainInstance instance;
  auto& points = instance.points;

  // Horizontal chain h_0 .. h_{m-1} at x = 2^i - 1.
  std::vector<geom::Vec2> h_pos(m);
  for (std::size_t i = 0; i < m; ++i) {
    h_pos[i] = {std::exp2(static_cast<double>(i)) - 1.0, 0.0};
  }
  // Diagonal chain: v_i above h_i at distance d_i = (1 + eps) * 2^(i-1),
  // i = 1 .. m-1 ("a little more than h_i's distance to its left neighbor").
  std::vector<geom::Vec2> v_pos(m);
  for (std::size_t i = 1; i < m; ++i) {
    const double d = (1.0 + kEps) * std::exp2(static_cast<double>(i) - 1.0);
    v_pos[i] = {h_pos[i].x, d};
  }
  // Helpers: t_i on segment v_{i-1} v_i, i = 2 .. m-1.
  std::vector<geom::Vec2> t_pos(m);
  for (std::size_t i = 2; i < m; ++i) {
    t_pos[i] = v_pos[i - 1] + kF * (v_pos[i] - v_pos[i - 1]);
    assert(geom::dist(h_pos[i], t_pos[i]) > geom::dist(h_pos[i], v_pos[i]));
  }

  instance.h.resize(m);
  instance.v.assign(m, kInvalidNode);
  instance.t.assign(m, kInvalidNode);
  for (std::size_t i = 0; i < m; ++i) {
    instance.h[i] = static_cast<NodeId>(points.size());
    points.push_back(h_pos[i]);
  }
  for (std::size_t i = 1; i < m; ++i) {
    instance.v[i] = static_cast<NodeId>(points.size());
    points.push_back(v_pos[i]);
  }
  for (std::size_t i = 2; i < m; ++i) {
    instance.t[i] = static_cast<NodeId>(points.size());
    points.push_back(t_pos[i]);
  }

  // Scale so the diameter fits inside the unit transmission range; bounding
  // box diagonal upper-bounds the diameter.
  const geom::Aabb box = geom::bounding_box(points);
  const double diagonal = std::hypot(box.width(), box.height());
  // Tiny slack keeps the scaled diameter strictly under 1 despite rounding.
  const double scale = (1.0 - 1e-9) / diagonal;
  for (geom::Vec2& p : points) p = (p - box.lo) * scale;
  return instance;
}

graph::Graph TwoChainInstance::low_interference_tree() const {
  const std::size_t m = h.size();
  graph::Graph tree(points.size());
  tree.add_edge(h[0], h[1]);
  for (std::size_t i = 1; i < m; ++i) tree.add_edge(h[i], v[i]);
  for (std::size_t i = 2; i < m; ++i) {
    tree.add_edge(v[i - 1], t[i]);
    tree.add_edge(t[i], v[i]);
  }
  return tree;
}

}  // namespace rim::sim
