#include "rim/sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace rim::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling over the top of the range to kill modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace rim::sim
