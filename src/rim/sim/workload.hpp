#pragma once

#include <cstdint>
#include <vector>

#include "rim/core/scenario.hpp"
#include "rim/io/json.hpp"
#include "rim/obs/metrics.hpp"
#include "rim/sim/rng.hpp"

/// \file workload.hpp
/// Multi-tenant churn replay over the batch pipeline.
///
/// A workload is T independent tenants, each a Scenario fed a deterministic
/// churn trace in batches: per tick, a mix of departures, moves, edge flips,
/// and arrivals (in that order, so every id in the batch is valid under
/// serial semantics), generated as a pure function of (seed, tenant). The
/// driver replays all tenants — concurrently on a driver-owned thread pool,
/// or serially with the inner batch pipeline parallelised instead — and
/// reports per-tenant end states plus a checksum of the final interference
/// vector. Because Scenario::apply_batch is bit-identical to serial
/// application, every replay mode must produce identical reports; the tests
/// assert exactly that, and bench_batch_pipeline uses the driver as its
/// churn harness.
///
/// The two parallelism axes are deliberately exclusive per run: a tenant
/// replayed on the driver's pool applies its batches inline (the inner
/// pipeline would otherwise wait_idle() on the pool it runs inside).
///
/// Thread-safety contract (DESIGN.md §8): the driver holds no locks.
/// Concurrent tenants write disjoint TenantStats slots (indexed by tenant
/// id) and record into the obs::Counter members, which are relaxed atomics;
/// everything else is tenant-local. That is why kConcurrentTenants needs no
/// mutex and stays bit-identical to kSerial.

namespace rim::parallel {
class ThreadPool;
}

namespace rim::sim {

struct WorkloadConfig {
  std::size_t tenants = 4;
  std::size_t initial_nodes = 256;
  std::size_t batches = 16;
  std::size_t batch_size = 64;
  double side = 10.0;  ///< deployment square side
  /// Mutation mix (fractions of batch_size; the remainder is edge flips).
  double remove_fraction = 0.15;
  double move_fraction = 0.35;
  double add_fraction = 0.15;
  std::uint64_t seed = 1;
  /// Evaluation configuration for each tenant's Scenario. Configure with
  /// the builder setters, e.g.
  /// `core::EvalOptions{}.with_strategy(core::Strategy::kGrid)`.
  core::EvalOptions eval{};
  /// Fault injection (sim::FaultPlan): probability that a batch is struck.
  /// Zero disables injection entirely; with recover_faults set, engine
  /// faults are healed by snapshot-restore-replay, so the report stays
  /// bit-identical to the fault-free run — the equivalence tests assert it.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 7;
  bool recover_faults = true;
};

/// One tenant's end state. Everything here is a pure function of the
/// config — identical across replay modes and thread counts.
struct TenantStats {
  std::size_t tenant = 0;
  std::size_t final_nodes = 0;
  std::size_t final_edges = 0;
  std::uint32_t final_max_interference = 0;
  /// FNV-1a over the final interference vector: a cheap bit-identity
  /// witness for cross-mode comparisons.
  std::uint64_t interference_checksum = 0;
  std::size_t mutations_applied = 0;
  std::size_t batches_deferred = 0;
  std::size_t faults_injected = 0;  ///< fault events that actually struck
  std::size_t restores = 0;         ///< snapshot-restore-replay recoveries
};

struct WorkloadReport {
  std::vector<TenantStats> tenants;
  std::uint64_t elapsed_ns = 0;  ///< wall time (excluded from determinism)

  [[nodiscard]] io::Json to_json() const;
};

/// How WorkloadDriver::run distributes the work.
enum class ReplayMode : std::uint8_t {
  kSerial,             ///< tenants in order, batches applied inline
  kParallelBatches,    ///< tenants in order, batches on the shared pool
  kConcurrentTenants,  ///< tenants on a driver-owned pool, batches inline
};

/// Generate the next churn batch for a tenant with \p node_count current
/// nodes: departures first, then moves and edge flips, then arrivals (each
/// wired to a uniformly chosen earlier node). Pure in (rng state, inputs).
[[nodiscard]] std::vector<core::Mutation> make_churn_batch(
    Rng& rng, std::size_t node_count, const WorkloadConfig& config);

/// Build tenant \p tenant's deterministic initial scenario: initial_nodes
/// uniform points on the square, wired as a ring plus seeded chords.
[[nodiscard]] core::Scenario make_tenant_scenario(const WorkloadConfig& config,
                                                  std::size_t tenant);

class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  /// Replay every tenant's full trace. Reports are bit-identical across
  /// modes; only elapsed_ns (and the obs counters' timing entries) differ.
  WorkloadReport run(ReplayMode mode);

  /// Driver-level obs counters (registerable with obs::Registry).
  [[nodiscard]] io::Json stats_json() const;

 private:
  TenantStats run_tenant(std::size_t tenant, parallel::ThreadPool* inner_pool);

  WorkloadConfig config_;
  obs::Counter runs_;
  obs::Counter batches_applied_;
  obs::Counter mutations_applied_;
  obs::Counter faults_injected_;
  obs::Counter fault_restores_;
  obs::Counter replay_ns_;
};

}  // namespace rim::sim
