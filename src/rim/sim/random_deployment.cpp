#include "rim/sim/random_deployment.hpp"

#include <random>

#include "rim/sim/generators.hpp"

namespace rim::sim {

geom::PointSet RandomDeployment::generate() const {
  switch (params_.kind) {
    case Kind::kClusters:
      return gaussian_clusters(params_.nodes, params_.clusters, params_.side,
                               params_.cluster_stddev, seed_);
    case Kind::kUniform:
      break;
  }
  return uniform_square(params_.nodes, params_.side, seed_);
}

std::uint64_t RandomDeployment::entropy_seed() {
  // The one sanctioned raw-entropy site (see the header): two 32-bit draws
  // folded into a 64-bit seed. Everything downstream is a pure function of
  // the returned value.
  std::random_device device;
  const auto hi = static_cast<std::uint64_t>(device());
  const auto lo = static_cast<std::uint64_t>(device());
  return (hi << 32) ^ lo;
}

}  // namespace rim::sim
