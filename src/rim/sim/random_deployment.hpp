#pragma once

#include <cstddef>
#include <cstdint>

#include "rim/geom/vec2.hpp"

/// \file random_deployment.hpp
/// Seeded, deterministic random deployments for the model-comparison and
/// scale experiments (E23).
///
/// A RandomDeployment is a value: (Params, seed) fully determine the point
/// set, bit-for-bit across platforms (sim::Rng is a specified xoshiro256**
/// stream, and generate() delegates to the sim/generators.hpp functions, so
/// a deployment's points are identical to the corresponding free-function
/// call with the same seed). Experiments log the seed next to the results
/// and every run is replayable.
///
/// Fresh entropy enters through exactly one audited door: entropy_seed(),
/// the library's sanctioned std::random_device call site (rim_lint's
/// raw-random rule exempts sim/rng and sim/random_deployment — everywhere
/// else std::random_device is a lint error). Callers that use it must
/// print the seed they obtained, or the run cannot be reproduced.

namespace rim::sim {

class RandomDeployment {
 public:
  enum class Kind : std::uint8_t {
    kUniform,   ///< i.i.d. uniform in [0, side]^2 (generators: uniform_square)
    kClusters,  ///< Gaussian clusters (generators: gaussian_clusters)
  };

  /// Deployment shape. Builder setters, matching the EvalOptions style.
  struct Params {
    Kind kind = Kind::kUniform;
    std::size_t nodes = 0;
    double side = 1.0;             ///< square side length
    std::size_t clusters = 8;      ///< kClusters: cluster count
    double cluster_stddev = 1.0;   ///< kClusters: per-cluster spread

    Params& with_kind(Kind k) {
      kind = k;
      return *this;
    }
    Params& with_nodes(std::size_t n) {
      nodes = n;
      return *this;
    }
    Params& with_side(double s) {
      side = s;
      return *this;
    }
    Params& with_clusters(std::size_t c) {
      clusters = c;
      return *this;
    }
    Params& with_cluster_stddev(double s) {
      cluster_stddev = s;
      return *this;
    }
  };

  RandomDeployment(Params params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  /// The deployment's point set — a pure function of (params, seed); every
  /// call regenerates the identical points.
  [[nodiscard]] geom::PointSet generate() const;

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// One fresh 64-bit seed from the host entropy source — the single
  /// sanctioned std::random_device site outside sim/rng. Log the value you
  /// get; (params, logged seed) replays the run exactly.
  [[nodiscard]] static std::uint64_t entropy_seed();

 private:
  Params params_;
  std::uint64_t seed_;
};

}  // namespace rim::sim
