#include "rim/sim/workload.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "rim/parallel/thread_pool.hpp"
#include "rim/sim/fault.hpp"

namespace rim::sim {

namespace {

/// Stable per-tenant seed derivation (SplitMix64-style mix keeps tenant
/// streams decorrelated even for adjacent seeds).
std::uint64_t tenant_seed(std::uint64_t seed, std::size_t tenant) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (tenant + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::span<const std::uint32_t> values) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint32_t v : values) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (v >> shift) & 0xFFU;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

}  // namespace

std::vector<core::Mutation> make_churn_batch(Rng& rng, std::size_t node_count,
                                             const WorkloadConfig& config) {
  using core::Mutation;
  const std::size_t size = config.batch_size;
  const auto share = [&](double fraction) {
    return static_cast<std::size_t>(fraction *
                                    static_cast<double>(size));
  };
  // Departures never shrink the network below a working floor.
  std::size_t removes = share(config.remove_fraction);
  const std::size_t floor = 8;
  if (node_count < floor + removes) {
    removes = node_count > floor ? node_count - floor : 0;
  }
  const std::size_t moves = share(config.move_fraction);
  const std::size_t adds = share(config.add_fraction);
  const std::size_t flips =
      size > removes + moves + adds ? size - removes - moves - adds : 0;

  std::vector<Mutation> batch;
  batch.reserve(removes + moves + flips + 2 * adds);
  // Order matters: departures first shrink the id space to a known n1 =
  // node_count - removes, against which every later target is drawn — the
  // whole batch stays valid under serial (and hence batch) semantics.
  for (std::size_t i = 0; i < removes; ++i) {
    batch.push_back(Mutation::remove_node(
        static_cast<NodeId>(rng.next_below(node_count - i))));
  }
  const std::size_t n1 = node_count - removes;
  if (n1 == 0) return batch;
  for (std::size_t i = 0; i < moves; ++i) {
    batch.push_back(Mutation::move_node(
        static_cast<NodeId>(rng.next_below(n1)),
        {rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)}));
  }
  for (std::size_t i = 0; i < flips && n1 >= 2; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n1));
    auto v = static_cast<NodeId>(rng.next_below(n1));
    if (u == v) v = static_cast<NodeId>((u + 1) % n1);
    batch.push_back(rng.next_double() < 0.5 ? Mutation::add_edge(u, v)
                                            : Mutation::remove_edge(u, v));
  }
  for (std::size_t i = 0; i < adds; ++i) {
    const auto id = static_cast<NodeId>(n1 + i);
    batch.push_back(Mutation::add_node(
        {rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)}));
    // Wire each arrival to a uniformly chosen earlier node so it actually
    // transmits (isolated nodes have radius 0 and perturb nothing).
    batch.push_back(Mutation::add_edge(
        id, static_cast<NodeId>(rng.next_below(id))));
  }
  return batch;
}

core::Scenario make_tenant_scenario(const WorkloadConfig& config,
                                    std::size_t tenant) {
  Rng rng(tenant_seed(config.seed, tenant));
  const std::size_t n = std::max<std::size_t>(config.initial_nodes, 2);
  geom::PointSet points(n);
  for (auto& p : points) {
    p = {rng.uniform(0.0, config.side), rng.uniform(0.0, config.side)};
  }
  graph::Graph topology(n);
  // Ring plus n/4 chords: connected, bounded degree, deterministic.
  for (NodeId u = 0; u < n; ++u) {
    topology.add_edge(u, static_cast<NodeId>((u + 1) % n));
  }
  for (std::size_t i = 0; i < n / 4; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) v = static_cast<NodeId>((u + 1) % n);
    if (!topology.has_edge(u, v)) topology.add_edge(u, v);
  }
  return core::Scenario(points, topology, config.eval);
}

TenantStats WorkloadDriver::run_tenant(std::size_t tenant,
                                       parallel::ThreadPool* inner_pool) {
  // The batch stream must not depend on the initial wiring's RNG draws:
  // fresh stream, distinct mix constant.
  Rng rng(tenant_seed(config_.seed ^ 0xA5A5A5A5A5A5A5A5ULL, tenant));
  core::Scenario scenario = make_tenant_scenario(config_, tenant);
  // Faults draw from their own per-tenant seeded plan so enabling them
  // never perturbs the churn stream itself.
  const FaultPlan faults =
      config_.fault_rate > 0.0
          ? FaultPlan::generate(tenant_seed(config_.fault_seed, tenant),
                                config_.batches, config_.fault_rate)
          : FaultPlan{};

  TenantStats stats;
  stats.tenant = tenant;
  for (std::size_t b = 0; b < config_.batches; ++b) {
    const std::vector<core::Mutation> batch =
        make_churn_batch(rng, scenario.node_count(), config_);
    const FaultedBatchOutcome outcome = apply_batch_with_faults(
        scenario, batch, faults.find(b), inner_pool, config_.recover_faults);
    stats.mutations_applied += outcome.result.applied;
    if (outcome.result.deferred) ++stats.batches_deferred;
    if (outcome.fault_fired) {
      ++stats.faults_injected;
      ++faults_injected_;
    }
    if (outcome.restored) {
      ++stats.restores;
      ++fault_restores_;
    }
    ++batches_applied_;
    mutations_applied_ += outcome.result.applied;
  }
  stats.final_nodes = scenario.node_count();
  stats.final_edges = scenario.edge_count();
  stats.final_max_interference = scenario.max_interference();
  stats.interference_checksum = fnv1a(scenario.interference());
  return stats;
}

WorkloadReport WorkloadDriver::run(ReplayMode mode) {
  ++runs_;
  const obs::ScopedTimer timer(replay_ns_);
  WorkloadReport report;
  report.tenants.resize(config_.tenants);
  const std::uint64_t start = obs::now_ns();
  if (mode == ReplayMode::kConcurrentTenants && config_.tenants > 1) {
    // Driver-owned pool: tenants run concurrently, each applying its
    // batches inline (never wait_idle() on the pool a tenant runs inside).
    const auto hw = static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
    parallel::ThreadPool pool(std::min(config_.tenants, hw));
    for (std::size_t t = 0; t < config_.tenants; ++t) {
      pool.submit([this, t, &report] {
        report.tenants[t] = run_tenant(t, nullptr);
      });
    }
    pool.wait_idle();
  } else {
    parallel::ThreadPool* inner =
        mode == ReplayMode::kParallelBatches ? &parallel::ThreadPool::shared()
                                             : nullptr;
    for (std::size_t t = 0; t < config_.tenants; ++t) {
      report.tenants[t] = run_tenant(t, inner);
    }
  }
  report.elapsed_ns = obs::now_ns() - start;
  return report;
}

io::Json WorkloadReport::to_json() const {
  io::JsonArray rows;
  rows.reserve(tenants.size());
  for (const TenantStats& t : tenants) {
    io::JsonObject o;
    o["tenant"] = io::Json(t.tenant);
    o["final_nodes"] = io::Json(t.final_nodes);
    o["final_edges"] = io::Json(t.final_edges);
    o["final_max_interference"] = io::Json(t.final_max_interference);
    o["interference_checksum"] = io::Json(t.interference_checksum);
    o["mutations_applied"] = io::Json(t.mutations_applied);
    o["batches_deferred"] = io::Json(t.batches_deferred);
    o["faults_injected"] = io::Json(t.faults_injected);
    o["restores"] = io::Json(t.restores);
    rows.emplace_back(std::move(o));
  }
  io::JsonObject o;
  o["tenants"] = io::Json(std::move(rows));
  o["elapsed_ns"] = io::Json(elapsed_ns);
  return io::Json(std::move(o));
}

io::Json WorkloadDriver::stats_json() const {
  io::JsonObject o;
  o["runs"] = runs_.to_json();
  o["batches_applied"] = batches_applied_.to_json();
  o["mutations_applied"] = mutations_applied_.to_json();
  o["faults_injected"] = faults_injected_.to_json();
  o["fault_restores"] = fault_restores_.to_json();
  o["replay_ns"] = replay_ns_.to_json();
  return io::Json(std::move(o));
}

}  // namespace rim::sim
